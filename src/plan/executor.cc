#include "src/plan/executor.h"

#include <algorithm>
#include <chrono>

#include "src/exec/compressed_predicate.h"
#include "src/exec/dictionary_table.h"
#include "src/exec/filter.h"
#include "src/exec/instrument.h"
#include "src/exec/limit.h"
#include "src/exec/ordered_aggregate.h"
#include "src/exec/parallel_rollup.h"
#include "src/exec/scheduler.h"
#include "src/exec/table_scan.h"
#include "src/exec/topn.h"
#include "src/observe/journal.h"
#include "src/observe/metrics.h"
#include "src/observe/trace.h"
#include "src/plan/strategic.h"

namespace tde {

namespace {

ColumnProps PropsOf(const Column& col) {
  ColumnProps p;
  p.meta = col.metadata();
  p.width = col.TokenWidth();
  return p;
}

/// Wraps the built plan's operator in the instrumentation layer: a stats
/// node named `name` with the given children (the stats nodes of the
/// operator's lowered inputs), recorded into by an Instrumented wrapper.
/// No-op when stats collection is disabled.
void Attach(BuiltPlan* out, std::string name,
            std::vector<std::shared_ptr<observe::OperatorStats>> children,
            std::function<void(observe::OperatorStats*)> on_close = {}) {
  if (!observe::StatsEnabled()) return;
  auto node = std::make_shared<observe::OperatorStats>();
  node->name = std::move(name);
  for (auto& c : children) {
    if (c != nullptr) node->children.push_back(std::move(c));
  }
  out->op = std::make_unique<Instrumented>(std::move(out->op), node,
                                           std::move(on_close));
  out->stats = std::move(node);
}

/// Fills `out->props` with the column properties a scan of `node` exposes.
Status ScanProps(const PlanNode& node, BuiltPlan* out) {
  if (node.columns.empty()) {
    for (size_t i = 0; i < node.table->num_columns(); ++i) {
      const Column& c = node.table->column(i);
      out->props[c.name()] = PropsOf(c);
    }
  } else {
    for (const std::string& n : node.columns) {
      TDE_ASSIGN_OR_RETURN(auto c, node.table->ColumnByName(n));
      out->props[n] = PropsOf(*c);
    }
  }
  for (const std::string& n : node.token_columns) {
    TDE_ASSIGN_OR_RETURN(auto c, node.table->ColumnByName(n));
    out->props[n + "$token"] = PropsOf(*c);
  }
  return Status::OK();
}

/// Segment boundaries of the first multi-segment column the scan reads, as
/// row ranges. Any consistent partition of the row space is correct for
/// parallel scans; aligning with one column's segments keeps that column's
/// blob faults partition-local. Empty when every scanned column is
/// monolithic.
std::vector<RowRange> SegmentAlignedRanges(const PlanNode& node) {
  std::vector<std::string> names = node.columns;
  if (names.empty()) {
    for (size_t i = 0; i < node.table->num_columns(); ++i) {
      names.push_back(node.table->column(i).name());
    }
  }
  for (const std::string& n : names) {
    auto c = node.table->ColumnByName(n);
    if (!c.ok()) continue;
    const std::vector<SegmentShape> shapes = c.value()->SegmentShapes();
    if (shapes.size() <= 1) continue;
    std::vector<RowRange> out;
    out.reserve(shapes.size());
    for (const SegmentShape& s : shapes) {
      out.push_back({s.start_row, s.start_row + s.rows});
    }
    return out;
  }
  return {};
}

Result<BuiltPlan> BuildScan(const PlanNode& node,
                            const SegmentPruneResult* prune = nullptr) {
  TableScanOptions opts;
  opts.columns = node.columns;
  opts.token_columns = node.token_columns;
  opts.code_columns = node.code_columns;
  if (prune != nullptr && prune->segments_pruned > 0) {
    opts.ranges = prune->ranges;
  }
  BuiltPlan out;
  out.op = std::make_unique<TableScan>(node.table, std::move(opts));
  TDE_RETURN_NOT_OK(ScanProps(node, &out));
  for (const std::string& n : node.code_columns) {
    out.notes.push_back("scan(" + n + "): dictionary codes (group key)");
  }
  std::function<void(observe::OperatorStats*)> on_close;
  if (prune != nullptr && prune->segments_pruned > 0) {
    out.notes.push_back("scan: " + std::to_string(prune->segments_pruned) +
                        " segment(s) zone-map pruned (" +
                        std::to_string(prune->rows_pruned) +
                        " rows skipped)");
    observe::QueryCount(observe::QueryCounter::kSegmentsPruned,
                        prune->segments_pruned);
    observe::QueryCount(observe::QueryCounter::kRowsPruned,
                        prune->rows_pruned);
    const uint64_t segs = prune->segments_pruned;
    const uint64_t rows = prune->rows_pruned;
    on_close = [segs, rows](observe::OperatorStats* s) {
      s->extras.emplace_back("segments_pruned", segs);
      s->extras.emplace_back("rows_pruned", rows);
    };
  }
  Attach(&out, "TableScan(" + node.table->name() + ")", {},
         std::move(on_close));
  return out;
}

/// Rewrites eligible string-column subtrees of `pred` into dictionary-code
/// predicates against `schema`, recording the rewrite count in metrics and
/// `notes`. Returns `pred` unchanged when the plan opted out.
ExprPtr LowerPredicate(const ExprPtr& pred, bool compressed_eval,
                       const Schema& schema, std::vector<std::string>* notes,
                       int* rewrites) {
  *rewrites = 0;
  if (!compressed_eval || pred == nullptr) return pred;
  ExprPtr lowered = expr::RewriteDictPredicates(pred, schema, rewrites);
  if (*rewrites > 0) {
    notes->push_back("filter: " + std::to_string(*rewrites) +
                     " dictionary-code predicate(s)");
    observe::QueryCount(observe::QueryCounter::kDictRewrites,
                        static_cast<uint64_t>(*rewrites));
  }
  return lowered;
}

Result<BuiltPlan> BuildFilter(const PlanNode& node, BuiltPlan child) {
  BuiltPlan out;
  out.notes = std::move(child.notes);
  int dict_rewrites = 0;
  ExprPtr pred =
      LowerPredicate(node.predicate, node.compressed_eval,
                     child.op->output_schema(), &out.notes, &dict_rewrites);
  out.op = std::make_unique<Filter>(std::move(child.op), std::move(pred));
  // Filtering keeps value bounds and order but can destroy density
  // (Sect. 3.4.2: "the filter will remove an existing dense attribute").
  out.props = std::move(child.props);
  for (auto& [name, p] : out.props) p.meta.dense = false;
  out.grouped_on = child.grouped_on;
  std::function<void(observe::OperatorStats*)> on_close;
  if (dict_rewrites > 0) {
    on_close = [dict_rewrites](observe::OperatorStats* s) {
      s->extras.emplace_back("dict_rewrites",
                             static_cast<uint64_t>(dict_rewrites));
    };
  }
  Attach(&out, "Filter", {std::move(child.stats)}, std::move(on_close));
  return out;
}

Result<BuiltPlan> BuildProject(const PlanNode& node, BuiltPlan child) {
  BuiltPlan out;
  out.notes = std::move(child.notes);
  for (const ProjectedColumn& pc : node.projections) {
    if (const std::string* ref = pc.expr->AsColumnRef()) {
      auto it = child.props.find(*ref);
      if (it != child.props.end()) out.props[pc.name] = it->second;
      if (child.grouped_on == *ref) out.grouped_on = pc.name;
    }
  }
  out.op = std::make_unique<Project>(std::move(child.op), node.projections);
  Attach(&out, "Project", {std::move(child.stats)});
  return out;
}

Result<BuiltPlan> BuildAggregate(const PlanNode& node, BuiltPlan child) {
  AggregateOptions agg = node.agg;
  agg.dict_code_keys = node.agg.dict_code_keys && node.compressed_agg;
  BuiltPlan out;
  out.notes = std::move(child.notes);
  // Dictionary-code grouping engages per string key (the operator decides
  // against the key's heap at run time); note it when a key is eligible.
  bool dict_keys = false;
  if (agg.dict_code_keys) {
    const Schema& in = child.op->output_schema();
    for (const std::string& k : agg.group_by) {
      auto idx = in.FieldIndex(k);
      if (idx.ok() && in.field(idx.value()).type == TypeId::kString) {
        dict_keys = true;
      }
    }
  }
  const bool ordered =
      !node.force_hash_agg &&
      (node.grouped_input ||
       (agg.group_by.size() == 1 && child.grouped_on == agg.group_by[0]));
  HashAggregate* hash_raw = nullptr;
  OrderedAggregate* ordered_raw = nullptr;
  if (ordered) {
    if (!agg.group_by.empty()) {
      out.notes.push_back("aggregate(" + agg.group_by[0] +
                          "): ordered (grouped input)");
    }
    auto op =
        std::make_unique<OrderedAggregate>(std::move(child.op), std::move(agg));
    ordered_raw = op.get();
    out.op = std::move(op);
  } else {
    if (agg.group_by.size() == 1 && !agg.hash_algorithm.has_value()) {
      auto it = child.props.find(agg.group_by[0]);
      if (it != child.props.end()) {
        const GroupingChoice gc = ChooseGrouping(it->second);
        agg.hash_algorithm = gc.algorithm;
        agg.key_min = gc.key_min;
        agg.key_max = gc.key_max;
      }
    }
    if (!agg.group_by.empty()) {
      out.notes.push_back(
          "aggregate(" + agg.group_by[0] + "): " +
          (dict_keys && agg.group_by.size() == 1
               ? std::string("dictionary codes (direct, late "
                             "materialization)")
               : HashAlgorithmName(
                     agg.hash_algorithm.value_or(HashAlgorithm::kCollision)) +
                     std::string(" hash")));
    }
    auto op =
        std::make_unique<HashAggregate>(std::move(child.op), std::move(agg));
    hash_raw = op.get();
    out.op = std::move(op);
  }
  for (const std::string& k : node.agg.group_by) {
    auto it = child.props.find(k);
    if (it != child.props.end()) out.props[k] = it->second;
  }
  std::function<void(observe::OperatorStats*)> on_close;
  if (dict_keys) {
    // The wrapper's Close runs after the aggregate's pipeline finishes, so
    // the group count is final here.
    on_close = [hash_raw, ordered_raw](observe::OperatorStats* s) {
      const uint64_t groups = hash_raw != nullptr
                                  ? hash_raw->groups_late_materialized()
                                  : ordered_raw->groups_late_materialized();
      if (groups == 0) return;
      s->extras.emplace_back("groups_late_materialized", groups);
      observe::QueryCount(observe::QueryCounter::kGroupsLateMaterialized,
                          groups);
    };
  }
  const std::string key =
      node.agg.group_by.empty() ? "" : "(" + node.agg.group_by[0] + ")";
  Attach(&out,
         (ordered ? "OrderedAggregate" : "HashAggregate") + key,
         {std::move(child.stats)}, std::move(on_close));
  return out;
}

/// Emits the one answer row of a metadata-answered whole-table aggregate
/// (TryMetadataAggregate). No scan ever opens — the answers were computed
/// from directory facts at strategic time.
class MetadataAggregateSource : public Operator {
 public:
  MetadataAggregateSource(Schema schema, std::vector<Lane> row)
      : schema_(std::move(schema)), row_(std::move(row)) {}

  Status Open() override {
    done_ = false;
    return Status::OK();
  }

  Status Next(Block* block, bool* eos) override {
    block->columns.clear();
    if (done_) {
      *eos = true;
      return Status::OK();
    }
    for (size_t i = 0; i < row_.size(); ++i) {
      ColumnVector cv;
      cv.type = schema_.field(i).type;
      cv.lanes.push_back(row_[i]);
      block->columns.push_back(std::move(cv));
    }
    done_ = true;
    *eos = false;
    return Status::OK();
  }

  const Schema& output_schema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<Lane> row_;
  bool done_ = false;
};

Result<BuiltPlan> BuildMetadataAggregate(const PlanNode& node) {
  const PlanNode& scan = *node.children[0];
  Schema schema;
  for (const AggSpec& a : node.agg.aggs) {
    TypeId input_type = TypeId::kInteger;
    if (a.kind != AggKind::kCountStar) {
      TDE_ASSIGN_OR_RETURN(auto c, scan.table->ColumnByName(a.input));
      input_type = c->type();
    }
    schema.AddField({a.output, agg_internal::OutputType(a.kind, input_type)});
  }
  BuiltPlan out;
  out.notes.push_back("aggregate: " + std::to_string(node.metadata_row.size()) +
                      " aggregate(s) answered from metadata, scan elided");
  observe::QueryCount(observe::QueryCounter::kMetadataAnswers,
                      node.metadata_row.size());
  const uint64_t answers = node.metadata_row.size();
  out.op = std::make_unique<MetadataAggregateSource>(std::move(schema),
                                                     node.metadata_row);
  Attach(&out, "MetadataAggregate(" + scan.table->name() + ")", {},
         [answers](observe::OperatorStats* s) {
           s->extras.emplace_back("metadata_answers", answers);
         });
  return out;
}

Result<BuiltPlan> BuildRunFoldAggregate(const PlanNode& node) {
  const PlanNode& isnode = *node.children[0];
  TDE_ASSIGN_OR_RETURN(auto col,
                       isnode.table->ColumnByName(isnode.index_column));
  TDE_ASSIGN_OR_RETURN(std::vector<IndexEntry> index, BuildIndexTable(*col));

  // Share the heap for cold token columns so it survives eviction (same as
  // BuildIndexedScan).
  std::shared_ptr<const StringHeap> value_heap;
  if (col->compression() == CompressionKind::kHeap) {
    TDE_ASSIGN_OR_RETURN(auto heap_pin, col->Pin());
    value_heap = heap_pin
                     ? std::shared_ptr<const StringHeap>(heap_pin->heap)
                     : std::shared_ptr<const StringHeap>(col, col->heap());
  }

  RunFoldOptions opts;
  opts.value_name = isnode.index_column;
  opts.value_type = col->type();
  opts.value_heap = std::move(value_heap);
  opts.group_by_value = !node.agg.group_by.empty();
  opts.aggs = node.agg.aggs;

  BuiltPlan out;
  out.notes.push_back("aggregate(" + isnode.index_column + "): folded " +
                      std::to_string(index.size()) + " runs (" +
                      std::to_string(IndexRowCount(index)) +
                      " rows) in the compressed domain");
  out.props[isnode.index_column] = PropsOf(*col);
  if (opts.group_by_value) out.grouped_on = isnode.index_column;
  auto op = std::make_unique<RunFoldAggregate>(std::move(index),
                                               std::move(opts));
  RunFoldAggregate* raw = op.get();
  out.op = std::move(op);
  Attach(&out, "RunFoldAggregate(" + isnode.index_column + ")", {},
         [raw](observe::OperatorStats* s) {
           s->extras.emplace_back("runs_folded", raw->runs_folded());
         });
  return out;
}

Result<BuiltPlan> BuildJoinTable(const PlanNode& node, BuiltPlan child) {
  BuiltPlan out;
  out.notes = std::move(child.notes);
  {
    auto choice = ChooseJoinStrategy(*node.inner_table, node.join.inner_key);
    if (choice.ok()) {
      out.notes.push_back("join(" + node.join.inner_key + "): " +
                          JoinStrategyName(choice.value().strategy));
    }
  }
  for (const std::string& p : node.join.inner_payload) {
    TDE_ASSIGN_OR_RETURN(auto c, node.inner_table->ColumnByName(p));
    out.props[p] = PropsOf(*c);
  }
  out.props.insert(child.props.begin(), child.props.end());
  out.op = std::make_unique<HashJoin>(std::move(child.op), node.inner_table,
                                      node.join);
  Attach(&out, "HashJoin(" + node.join.inner_key + ")",
         {std::move(child.stats)});
  return out;
}

Result<BuiltPlan> BuildInvisibleJoin(const PlanNode& node) {
  const PlanNode& scan = *node.children[0];
  if (scan.kind != PlanNodeKind::kScan) {
    return {Status::Internal("invisible join child must be a scan")};
  }
  const std::string& c = node.dict_column;
  TDE_ASSIGN_OR_RETURN(auto col, scan.table->ColumnByName(c));

  // Outer side: the main table with the compressed column as raw tokens.
  TableScanOptions outer_opts;
  if (scan.columns.empty()) {
    for (size_t i = 0; i < scan.table->num_columns(); ++i) {
      const std::string& n = scan.table->column(i).name();
      if (n != c) outer_opts.columns.push_back(n);
    }
  } else {
    for (const std::string& n : scan.columns) {
      if (n != c) outer_opts.columns.push_back(n);
    }
  }
  outer_opts.token_columns = {c};
  auto outer = std::make_unique<TableScan>(scan.table, outer_opts);

  // Inner side: DictionaryTable -> pushed-down filter/computations ->
  // FlowTable (restricted to random-access encodings, Sect. 4.3).
  // A possibly-nullable column gets an explicit NULL dictionary row so the
  // pushed-down predicate/computations decide the fate of NULL main-table
  // rows with ordinary expression semantics (IS NULL keeps them, LENGTH
  // maps them to NULL) instead of the join dropping them unconditionally.
  const ColumnMetadata& cmeta = col->metadata();
  const bool null_row = !cmeta.null_known || cmeta.has_nulls;
  TDE_ASSIGN_OR_RETURN(auto dict_table, BuildDictionaryTable(col, null_row));
  std::unique_ptr<Operator> inner_flow =
      std::make_unique<TableScan>(dict_table);
  if (node.inner_predicate != nullptr) {
    inner_flow = std::make_unique<Filter>(std::move(inner_flow),
                                          node.inner_predicate);
  }
  std::vector<std::string> payload = {c};
  if (!node.inner_projections.empty()) {
    std::vector<ProjectedColumn> projections;
    projections.push_back({expr::Col(c + "$token"), c + "$token"});
    projections.push_back({expr::Col(c), c});
    for (const ProjectedColumn& pc : node.inner_projections) {
      projections.push_back(pc);
      payload.push_back(pc.name);
    }
    inner_flow =
        std::make_unique<Project>(std::move(inner_flow), projections);
  }
  FlowTableOptions ft;
  ft.allowed = kAllowRandomAccess;
  ft.table_name = c + "$inner";
  TDE_ASSIGN_OR_RETURN(auto inner_table,
                       FlowTable::Build(std::move(inner_flow), ft));

  HashJoinOptions join;
  join.outer_key = c + "$token";
  join.inner_key = c + "$token";
  join.inner_payload = payload;
  auto joined =
      std::make_unique<HashJoin>(std::move(outer), inner_table, join);
  std::string note = "invisible join(" + c + "): " +
                     std::to_string(inner_table->rows()) +
                     " dictionary rows";
  if (auto choice = ChooseJoinStrategy(*inner_table, c + "$token");
      choice.ok()) {
    note += std::string(", ") + JoinStrategyName(choice.value().strategy);
  }

  // Drop the token column from the output and restore the scan's column
  // order: the dictionary column comes back at its original position, not
  // appended after the outer columns, so SELECT * keeps its shape. Pushed
  // computations (not part of the scan's schema) follow at the end.
  std::vector<std::string> original;
  if (scan.columns.empty()) {
    for (size_t i = 0; i < scan.table->num_columns(); ++i) {
      original.push_back(scan.table->column(i).name());
    }
  } else {
    original = scan.columns;
  }
  if (std::find(original.begin(), original.end(), c) == original.end()) {
    original.push_back(c);
  }
  std::vector<ProjectedColumn> keep;
  for (const std::string& n : original) {
    keep.push_back({expr::Col(n), n});
  }
  for (const std::string& n : payload) {
    if (n != c) keep.push_back({expr::Col(n), n});
  }
  BuiltPlan out;
  out.notes.push_back(std::move(note));
  for (const std::string& n : outer_opts.columns) {
    TDE_ASSIGN_OR_RETURN(auto oc, scan.table->ColumnByName(n));
    out.props[n] = PropsOf(*oc);
  }
  for (const std::string& n : payload) {
    auto ic = inner_table->ColumnByName(n);
    if (ic.ok()) out.props[n] = PropsOf(*ic.value());
  }
  out.op = std::make_unique<Project>(std::move(joined), std::move(keep));
  Attach(&out, "InvisibleJoin(" + c + ")", {});
  return out;
}

Result<BuiltPlan> BuildIndexedScan(const PlanNode& node, bool* grouped) {
  TDE_ASSIGN_OR_RETURN(auto col, node.table->ColumnByName(node.index_column));
  TDE_ASSIGN_OR_RETURN(std::vector<IndexEntry> index, BuildIndexTable(*col));

  // Share the payload heap for cold columns so it survives eviction; the
  // index-side predicate below needs it too when the values are tokens.
  std::shared_ptr<const StringHeap> value_heap;
  if (col->compression() == CompressionKind::kHeap) {
    TDE_ASSIGN_OR_RETURN(auto heap_pin, col->Pin());
    value_heap = heap_pin
                     ? std::shared_ptr<const StringHeap>(heap_pin->heap)
                     : std::shared_ptr<const StringHeap>(col, col->heap());
  }

  // Push the predicate down to the (tiny) index side: evaluate it once per
  // run over the entry values and keep qualifying ranges — whole runs are
  // emitted or skipped without ever touching their rows.
  uint64_t runs_skipped = 0;
  uint64_t rows_pruned = 0;
  const size_t total_runs = index.size();
  if (node.index_predicate != nullptr) {
    Schema index_schema;
    index_schema.AddField({node.index_column, col->type()});
    Block b;
    b.columns.resize(1);
    b.columns[0].type = col->type();
    b.columns[0].heap = value_heap;
    b.columns[0].lanes.reserve(index.size());
    for (const IndexEntry& e : index) b.columns[0].lanes.push_back(e.value);
    TDE_ASSIGN_OR_RETURN(ColumnVector mask,
                         node.index_predicate->Eval(b, index_schema));
    std::vector<IndexEntry> kept;
    kept.reserve(index.size());
    for (size_t i = 0; i < index.size(); ++i) {
      if (mask.lanes[i] == 1) {
        kept.push_back(index[i]);
      } else {
        ++runs_skipped;
        rows_pruned += index[i].count;
      }
    }
    index = std::move(kept);
    observe::QueryCount(observe::QueryCounter::kRunsSkipped, runs_skipped);
    observe::QueryCount(observe::QueryCounter::kRowsPruned, rows_pruned);
  }

  // Tactical decision (Sect. 4.2.2): sort the index for ordered retrieval
  // when the runs are long enough to pay for it.
  const bool value_ordered = col->metadata().sorted;
  IndexedAggChoice choice = ChooseIndexedAggregation(index, value_ordered);
  if (node.sort_index_by_value.has_value()) {
    choice.sort_index = *node.sort_index_by_value && !value_ordered;
    choice.ordered_aggregation = *node.sort_index_by_value || value_ordered;
  }
  if (choice.sort_index) SortIndexByValue(&index);
  *grouped = choice.ordered_aggregation;

  IndexedScanOptions opts;
  opts.value_name = node.index_column;
  opts.value_type = col->type();
  opts.value_heap = std::move(value_heap);
  opts.payload = node.payload;
  BuiltPlan out;
  out.notes.push_back(
      "indexed scan(" + node.index_column + "): " +
      std::to_string(index.size()) + " qualifying entries" +
      (choice.sort_index ? ", sorted by value" : "") +
      (choice.ordered_aggregation ? ", enables ordered aggregation" : ""));
  if (node.index_predicate != nullptr) {
    out.notes.push_back("run filter(" + node.index_column + "): skipped " +
                        std::to_string(runs_skipped) + "/" +
                        std::to_string(total_runs) + " runs (" +
                        std::to_string(rows_pruned) + " rows)");
  }
  out.props[node.index_column] = PropsOf(*col);
  for (const std::string& p : node.payload) {
    TDE_ASSIGN_OR_RETURN(auto pc, node.table->ColumnByName(p));
    out.props[p] = PropsOf(*pc);
  }
  if (choice.ordered_aggregation) out.grouped_on = node.index_column;
  uint64_t runs_sorted = 0;
  if (node.sort_runs) {
    // The run-sort rewrite: an ORDER BY became ordered run retrieval, so
    // the sort touched `index.size()` runs instead of their rows.
    runs_sorted = index.size();
    out.notes.push_back("sort(" + node.index_column + "): ordered " +
                        std::to_string(runs_sorted) +
                        " runs in the compressed domain, not " +
                        std::to_string(IndexRowCount(index)) + " rows");
    observe::QueryCount(observe::QueryCounter::kRunsSorted, runs_sorted);
    out.grouped_on = node.index_column;
    out.props[node.index_column].meta.sorted = true;
  }
  out.op = std::make_unique<IndexedScan>(node.table, std::move(index),
                                         std::move(opts));
  std::function<void(observe::OperatorStats*)> on_close;
  if (node.index_predicate != nullptr || runs_sorted > 0) {
    const bool filtered = node.index_predicate != nullptr;
    on_close = [filtered, runs_skipped, rows_pruned,
                runs_sorted](observe::OperatorStats* s) {
      if (filtered) {
        s->extras.emplace_back("runs_skipped", runs_skipped);
        s->extras.emplace_back("rows_pruned", rows_pruned);
      }
      if (runs_sorted > 0) s->extras.emplace_back("runs_sorted", runs_sorted);
    };
  }
  Attach(&out, "IndexedScan(" + node.index_column + ")", {},
         std::move(on_close));
  return out;
}

Result<BuiltPlan> BuildExchange(const PlanNode& node) {
  // If the exchange sits directly above a filter, route the filter into
  // the workers (that is the parallelized segment).
  const PlanNodePtr& child = node.children[0];
  ExchangeOptions opts;
  // <= 0 means "size from the shared pool": half the pool per query, so
  // concurrent queries cannot each claim every worker.
  opts.workers = node.exchange_workers > 0
                     ? node.exchange_workers
                     : TaskScheduler::Global().SuggestedQueryParallelism();
  opts.order_preserving = node.order_preserving;
  BuiltPlan built_child;
  int dict_rewrites = 0;
  if (child->kind == PlanNodeKind::kFilter) {
    const PlanNodePtr& grand = child->children[0];
    // Segment-partitioned route: an unordered exchange over filter(scan)
    // of a segmented table gives each worker its own range-restricted
    // TableScan over a disjoint subset of segments. Workers never contend
    // for a shared input queue, and zone-map pruning drops whole segments
    // before they are even assigned.
    if (!opts.order_preserving && opts.workers >= 2 &&
        grand->kind == PlanNodeKind::kScan && grand->table != nullptr &&
        child->predicate != nullptr) {
      SegmentPruneResult prune =
          PruneScanSegments(*grand->table, child->predicate);
      const std::vector<RowRange> visit =
          prune.segments_pruned > 0
              ? prune.ranges
              : std::vector<RowRange>{{0, grand->table->rows()}};
      std::vector<RowRange> pieces;
      for (const RowRange& s : SegmentAlignedRanges(*grand)) {
        for (const RowRange& v : visit) {
          const uint64_t b = std::max(s.begin, v.begin);
          const uint64_t e = std::min(s.end, v.end);
          if (b < e) pieces.push_back({b, e});
        }
      }
      if (pieces.size() >= 2) {
        const size_t nparts = std::min<size_t>(
            static_cast<size_t>(opts.workers), pieces.size());
        std::vector<std::vector<RowRange>> parts(nparts);
        for (size_t i = 0; i < pieces.size(); ++i) {
          parts[i % nparts].push_back(pieces[i]);
        }
        BuiltPlan out;
        TDE_RETURN_NOT_OK(ScanProps(*grand, &out));
        std::vector<std::unique_ptr<Operator>> sources;
        for (size_t p = 0; p < nparts; ++p) {
          TableScanOptions sopts;
          sopts.columns = grand->columns;
          sopts.token_columns = grand->token_columns;
          sopts.code_columns = grand->code_columns;
          sopts.ranges = NormalizeRanges(std::move(parts[p]));
          sources.push_back(
              std::make_unique<TableScan>(grand->table, std::move(sopts)));
        }
        ExprPtr pred = LowerPredicate(child->predicate, child->compressed_eval,
                                      sources[0]->output_schema(), &out.notes,
                                      &dict_rewrites);
        opts.transform = [pred](const Schema& schema,
                                Block* block) -> Status {
          TDE_ASSIGN_OR_RETURN(ColumnVector mask, pred->Eval(*block, schema));
          std::vector<char> keep(block->rows());
          for (size_t i = 0; i < keep.size(); ++i) {
            keep[i] = mask.lanes[i] == 1;
          }
          block->Compact(keep);
          return Status::OK();
        };
        for (auto& [name, p] : out.props) p.meta.dense = false;
        if (prune.segments_pruned > 0) {
          out.notes.push_back(
              "scan: " + std::to_string(prune.segments_pruned) +
              " segment(s) zone-map pruned (" +
              std::to_string(prune.rows_pruned) + " rows skipped)");
          observe::QueryCount(observe::QueryCounter::kSegmentsPruned,
                              prune.segments_pruned);
          observe::QueryCount(observe::QueryCounter::kRowsPruned,
                              prune.rows_pruned);
        }
        out.notes.push_back("exchange: segment-partitioned scan, " +
                            std::to_string(nparts) + " partitions over " +
                            std::to_string(pieces.size()) +
                            " segment ranges");
        auto exchange = std::make_unique<Exchange>(std::move(sources), opts);
        Exchange* raw = exchange.get();
        out.op = std::move(exchange);
        const uint64_t segs = prune.segments_pruned;
        const uint64_t rows = prune.rows_pruned;
        Attach(&out,
               "Exchange(partitioned, " + std::to_string(nparts) + " scans)",
               {}, [raw, segs, rows](observe::OperatorStats* s) {
                 const ExchangeRunStats& rs = raw->run_stats();
                 s->extras.emplace_back("blocks_in", rs.blocks_in);
                 if (segs > 0) {
                   s->extras.emplace_back("segments_pruned", segs);
                   s->extras.emplace_back("rows_pruned", rows);
                 }
                 for (size_t i = 0; i < rs.workers.size(); ++i) {
                   s->extras.emplace_back("w" + std::to_string(i) + "_blocks",
                                          rs.workers[i].blocks);
                   s->extras.emplace_back(
                       "w" + std::to_string(i) + "_rows_emitted",
                       rs.workers[i].rows_emitted);
                 }
               });
        return out;
      }
    }
    TDE_ASSIGN_OR_RETURN(built_child, BuildExecutable(child->children[0]));
    // The same dictionary-code lowering as BuildFilter; the wrapper's
    // translation cache is mutex-guarded, so workers share it safely.
    ExprPtr pred =
        LowerPredicate(child->predicate, child->compressed_eval,
                       built_child.op->output_schema(), &built_child.notes,
                       &dict_rewrites);
    opts.transform = [pred](const Schema& schema, Block* block) -> Status {
      TDE_ASSIGN_OR_RETURN(ColumnVector mask, pred->Eval(*block, schema));
      std::vector<char> keep(block->rows());
      for (size_t i = 0; i < keep.size(); ++i) keep[i] = mask.lanes[i] == 1;
      block->Compact(keep);
      return Status::OK();
    };
    for (auto& [name, p] : built_child.props) p.meta.dense = false;
  } else {
    TDE_ASSIGN_OR_RETURN(built_child, BuildExecutable(child));
  }
  BuiltPlan out;
  out.notes = std::move(built_child.notes);
  out.notes.push_back(std::string("exchange: ") +
                      (opts.order_preserving ? "order-preserving"
                                             : "unordered") +
                      " routing, " + std::to_string(opts.workers) +
                      " workers");
  out.props = std::move(built_child.props);
  auto exchange = std::make_unique<Exchange>(std::move(built_child.op), opts);
  Exchange* raw = exchange.get();
  out.op = std::move(exchange);
  if (opts.order_preserving) out.grouped_on = built_child.grouped_on;
  Attach(&out,
         "Exchange(" + std::to_string(opts.workers) + " workers, " +
             (opts.order_preserving ? "ordered" : "unordered") + ")",
         {std::move(built_child.stats)},
         // The wrapper's Close runs right after Exchange::Close joins the
         // threads, so the run stats are final here.
         [raw](observe::OperatorStats* s) {
           const ExchangeRunStats& rs = raw->run_stats();
           s->extras.emplace_back("blocks_in", rs.blocks_in);
           s->extras.emplace_back("producer_wait_us",
                                  rs.producer_wait_ns / 1000);
           s->extras.emplace_back("consumer_wait_us",
                                  rs.consumer_wait_ns / 1000);
           for (size_t i = 0; i < rs.workers.size(); ++i) {
             s->extras.emplace_back(
                 "w" + std::to_string(i) + "_blocks", rs.workers[i].blocks);
             s->extras.emplace_back(
                 "w" + std::to_string(i) + "_rows_emitted",
                 rs.workers[i].rows_emitted);
             s->extras.emplace_back(
                 "w" + std::to_string(i) + "_queue_wait_us",
                 rs.workers[i].queue_wait_ns / 1000);
           }
         });
  return out;
}

/// Lowers kTopN. Directly over a segmented scan (with sort_pruning on and
/// a lane-comparable first key) the input splits into one range-restricted
/// TableScan per segment, each carrying the key's zone: once the heap is
/// full, TopN skips — never opens, never faults — segments whose best
/// possible row cannot beat the current worst. Otherwise a single-source
/// TopN over the built child, with a sorted-input short-circuit when the
/// child is already ordered on the first key.
Result<BuiltPlan> BuildTopN(const PlanNodePtr& node) {
  TopNOptions topts;
  topts.dict_sort = node->dict_sort;
  const std::string key0 =
      node->sort_keys.empty() ? std::string() : node->sort_keys[0].column;

  const PlanNodePtr& child = node->children[0];
  if (node->sort_pruning && !key0.empty() &&
      child->kind == PlanNodeKind::kScan && child->table != nullptr &&
      child->token_columns.empty() && child->code_columns.empty()) {
    auto col_r = child->table->ColumnByName(key0);
    const bool key_scanned =
        child->columns.empty() ||
        std::find(child->columns.begin(), child->columns.end(), key0) !=
            child->columns.end();
    if (col_r.ok() && key_scanned &&
        (col_r.value()->type() == TypeId::kInteger ||
         col_r.value()->type() == TypeId::kDate ||
         col_r.value()->type() == TypeId::kDateTime ||
         col_r.value()->type() == TypeId::kBool)) {
      const std::vector<SegmentShape> shapes = col_r.value()->SegmentShapes();
      if (shapes.size() > 1) {
        BuiltPlan out;
        TDE_RETURN_NOT_OK(ScanProps(*child, &out));
        std::vector<TopNSource> sources;
        sources.reserve(shapes.size());
        for (const SegmentShape& s : shapes) {
          TableScanOptions sopts;
          sopts.columns = child->columns;
          sopts.ranges = {{s.start_row, s.start_row + s.rows}};
          TopNSource src;
          src.op = std::make_unique<TableScan>(child->table, std::move(sopts));
          if (s.zone.meta.min_max_known) {
            src.zone_known = true;
            src.min_value = s.zone.meta.min_value;
            src.max_value = s.zone.meta.max_value;
            src.has_nulls = !s.zone.meta.null_known || s.zone.meta.has_nulls;
          }
          sources.push_back(std::move(src));
        }
        const size_t nsegs = sources.size();
        auto topn = std::make_unique<TopN>(std::move(sources),
                                           node->sort_keys, node->limit,
                                           topts);
        TopN* raw = topn.get();
        out.op = std::move(topn);
        out.notes.push_back("topn(" + key0 + "): k=" +
                            std::to_string(node->limit) + ", " +
                            std::to_string(nsegs) +
                            " segment sources with zone skipping");
        out.grouped_on = key0;
        auto it = out.props.find(key0);
        if (it != out.props.end()) it->second.meta.sorted = true;
        Attach(&out, "TopN(" + std::to_string(node->limit) + ", " +
                         std::to_string(nsegs) + " segments)",
               {}, [raw](observe::OperatorStats* s) {
                 s->extras.emplace_back("input_rows", raw->input_rows());
                 s->extras.emplace_back("rows_materialized",
                                        raw->rows_materialized());
                 s->extras.emplace_back("segments_skipped",
                                        raw->segments_skipped());
                 observe::QueryCount(
                     observe::QueryCounter::kRowsMaterialized,
                     raw->rows_materialized());
                 observe::QueryCount(
                     observe::QueryCounter::kTopNSegmentsSkipped,
                     raw->segments_skipped());
                 if (raw->dict_keys() > 0) {
                   s->extras.emplace_back("dict_key_sorts", raw->dict_keys());
                   observe::QueryCount(observe::QueryCounter::kDictKeySorts,
                                       raw->dict_keys());
                 }
               });
        return out;
      }
    }
  }

  TDE_ASSIGN_OR_RETURN(BuiltPlan built_child, BuildExecutable(child));
  BuiltPlan out;
  out.notes = std::move(built_child.notes);
  out.props = std::move(built_child.props);
  if (!key0.empty()) {
    auto it = out.props.find(key0);
    if (it != out.props.end() && it->second.meta.sorted &&
        node->sort_keys[0].ascending) {
      // Child already ordered on the first key: the drain can stop at the
      // first row that cannot enter the full heap.
      topts.input_sorted = true;
      out.notes.push_back("topn(" + key0 +
                          "): sorted input, early stop enabled");
    }
    out.grouped_on = key0;
    if (it != out.props.end()) it->second.meta.sorted = true;
  }
  auto topn = std::make_unique<TopN>(std::move(built_child.op),
                                     node->sort_keys, node->limit, topts);
  TopN* raw = topn.get();
  out.op = std::move(topn);
  Attach(&out, "TopN(" + std::to_string(node->limit) + ")",
         {std::move(built_child.stats)}, [raw](observe::OperatorStats* s) {
           s->extras.emplace_back("input_rows", raw->input_rows());
           s->extras.emplace_back("rows_materialized",
                                  raw->rows_materialized());
           if (raw->early_stopped()) s->extras.emplace_back("early_stop", 1);
           observe::QueryCount(observe::QueryCounter::kRowsMaterialized,
                               raw->rows_materialized());
           if (raw->dict_keys() > 0) {
             s->extras.emplace_back("dict_key_sorts", raw->dict_keys());
             observe::QueryCount(observe::QueryCounter::kDictKeySorts,
                                 raw->dict_keys());
           }
         });
  return out;
}

}  // namespace

Result<BuiltPlan> BuildExecutable(const PlanNodePtr& node) {
  switch (node->kind) {
    case PlanNodeKind::kScan:
      return BuildScan(*node);
    case PlanNodeKind::kFilter: {
      // Zone-map segment pruning: when the filter sits directly on a scan
      // of a segmented table, fold the predicate against each segment's
      // zone map and hand the scan the surviving row ranges. Pruned
      // segments' blobs never fault in on the lazy v3 path.
      const PlanNodePtr& c = node->children[0];
      if (c->kind == PlanNodeKind::kScan && c->table != nullptr &&
          node->predicate != nullptr) {
        const SegmentPruneResult prune =
            PruneScanSegments(*c->table, node->predicate);
        if (prune.segments_pruned > 0) {
          TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildScan(*c, &prune));
          return BuildFilter(*node, std::move(child));
        }
      }
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      return BuildFilter(*node, std::move(child));
    }
    case PlanNodeKind::kProject: {
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      return BuildProject(*node, std::move(child));
    }
    case PlanNodeKind::kAggregate: {
      if (node->metadata_answered) return BuildMetadataAggregate(*node);
      if (node->fold_runs && !node->children.empty() &&
          node->children[0]->kind == PlanNodeKind::kIndexedScan) {
        return BuildRunFoldAggregate(*node);
      }
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      return BuildAggregate(*node, std::move(child));
    }
    case PlanNodeKind::kSort: {
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      BuiltPlan out;
      out.notes = std::move(child.notes);
      out.props = std::move(child.props);
      if (!node->sort_keys.empty()) {
        out.grouped_on = node->sort_keys[0].column;
        auto it = out.props.find(node->sort_keys[0].column);
        if (it != out.props.end()) it->second.meta.sorted = true;
      }
      SortOptions sopts;
      sopts.dict_sort = node->dict_sort;
      auto sort = std::make_unique<Sort>(std::move(child.op), node->sort_keys,
                                         sopts);
      // The wrapper owns the operator, so the raw pointer outlives Close.
      Sort* raw = sort.get();
      out.op = std::move(sort);
      Attach(&out,
             "Sort(" +
                 (node->sort_keys.empty() ? std::string()
                                          : node->sort_keys[0].column) +
                 ")",
             {std::move(child.stats)}, [raw](observe::OperatorStats* s) {
               s->extras.emplace_back("rows_materialized", raw->rows_sorted());
               observe::QueryCount(observe::QueryCounter::kRowsMaterialized,
                                   raw->rows_sorted());
               if (raw->dict_key_sorts() > 0) {
                 s->extras.emplace_back("dict_key_sorts",
                                        raw->dict_key_sorts());
                 observe::QueryCount(observe::QueryCounter::kDictKeySorts,
                                     raw->dict_key_sorts());
               }
               if (raw->parallel_chunks() > 0) {
                 s->extras.emplace_back("parallel_chunks",
                                        raw->parallel_chunks());
               }
             });
      return out;
    }
    case PlanNodeKind::kJoinTable: {
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      return BuildJoinTable(*node, std::move(child));
    }
    case PlanNodeKind::kInvisibleJoin:
      return BuildInvisibleJoin(*node);
    case PlanNodeKind::kIndexedScan: {
      bool grouped = false;
      return BuildIndexedScan(*node, &grouped);
    }
    case PlanNodeKind::kLimit: {
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      BuiltPlan out;
      out.notes = std::move(child.notes);
      out.props = std::move(child.props);
      out.grouped_on = child.grouped_on;
      out.op = std::make_unique<Limit>(std::move(child.op), node->limit);
      std::function<void(observe::OperatorStats*)> on_close;
      if (node->pruned_rows > 0) {
        // A metadata-pruned filter: the LIMIT 0 stands in for a scan whose
        // predicate the directory proved always-false.
        out.notes.push_back("metadata prune: filter provably false, " +
                            std::to_string(node->pruned_rows) +
                            " rows eliminated without scanning");
        observe::QueryCount(observe::QueryCounter::kRowsPruned,
                            node->pruned_rows);
        const uint64_t pruned = node->pruned_rows;
        on_close = [pruned](observe::OperatorStats* s) {
          s->extras.emplace_back("rows_pruned", pruned);
        };
      }
      Attach(&out, "Limit(" + std::to_string(node->limit) + ")",
             {std::move(child.stats)}, std::move(on_close));
      return out;
    }
    case PlanNodeKind::kTopN:
      return BuildTopN(node);
    case PlanNodeKind::kExchange:
      return BuildExchange(*node);
    case PlanNodeKind::kMaterialize: {
      TDE_ASSIGN_OR_RETURN(BuiltPlan child, BuildExecutable(node->children[0]));
      BuiltPlan out;
      out.notes = std::move(child.notes);
      out.op = std::make_unique<FlowTable>(std::move(child.op), node->flow);
      Attach(&out, "FlowTable(" + node->flow.table_name + ")",
             {std::move(child.stats)});
      return out;
    }
  }
  return {Status::Internal("unknown plan node kind")};
}

QueryResult::QueryResult(Schema schema, std::vector<Block> blocks)
    : schema_(std::move(schema)), blocks_(std::move(blocks)) {
  for (const Block& b : blocks_) rows_ += b.rows();
}

const ColumnVector* QueryResult::Locate(uint64_t row, size_t col,
                                        size_t* offset) const {
  for (const Block& b : blocks_) {
    if (row < b.rows()) {
      *offset = static_cast<size_t>(row);
      return &b.columns[col];
    }
    row -= b.rows();
  }
  return nullptr;
}

Lane QueryResult::Value(uint64_t row, size_t col) const {
  size_t off = 0;
  const ColumnVector* cv = Locate(row, col, &off);
  return cv == nullptr ? kNullSentinel : cv->lanes[off];
}

std::string QueryResult::ValueString(uint64_t row, size_t col) const {
  size_t off = 0;
  const ColumnVector* cv = Locate(row, col, &off);
  if (cv == nullptr) return "NULL";
  const Lane v = cv->lanes[off];
  if (v == kNullSentinel) return "NULL";
  if (cv->type == TypeId::kString && cv->heap != nullptr) {
    return std::string(cv->heap->Get(v));
  }
  return FormatLane(cv->type, v);
}

std::string QueryResult::ToString(uint64_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    if (c > 0) out += " | ";
    out += schema_.field(c).name;
  }
  out += "\n";
  const uint64_t n = std::min<uint64_t>(max_rows, rows_);
  for (uint64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      if (c > 0) out += " | ";
      out += ValueString(r, c);
    }
    out += "\n";
  }
  if (n < rows_) {
    out += "... (" + std::to_string(rows_ - n) + " more rows)\n";
  }
  return out;
}

namespace {

/// FNV-1a over the optimized plan's rendering: a stable shape fingerprint
/// that lets journal entries of recurring queries be grouped.
uint64_t PlanFingerprint(const PlanNodePtr& root) {
  const std::string text = PlanToString(root);
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Result<QueryResult> ExecutePlanNode(const PlanNodePtr& root) {
  if (!observe::StatsEnabled()) {
    // Stats-off hot path: no scope, no journal, no fingerprint — identical
    // to the pre-journal executor (the overhead-measurement mode).
    TDE_ASSIGN_OR_RETURN(BuiltPlan built, BuildExecutable(root));
    observe::TraceSpan span("execute", "query");
    std::vector<Block> blocks;
    TDE_RETURN_NOT_OK(DrainOperator(built.op.get(), &blocks));
    return QueryResult(built.op->output_schema(), std::move(blocks));
  }

  // The scope opens before lowering: strategic/tactical attribution (rows
  // pruned at plan time, dictionary rewrites, metadata answers) belongs to
  // this query too. Everything the operators and the pager count on this
  // thread — or on worker threads bound via StatsScope::Bind — lands here.
  // Concurrency gauge: how many queries this process is executing right
  // now (the load the shared TaskScheduler pool is divided across).
  struct InflightGuard {
    observe::Gauge* g;
    explicit InflightGuard(observe::Gauge* gauge) : g(gauge) { g->Add(1); }
    ~InflightGuard() { g->Add(-1); }
  } inflight(
      observe::MetricsRegistry::Global().GetGauge("queries_inflight"));

  observe::QueryJournal& journal = observe::QueryJournal::Global();
  observe::QueryJournalEntry entry;
  entry.id = journal.NextId();
  entry.sql = std::string(observe::CurrentQueryText()
                              .substr(0, observe::QueryJournal::kMaxSqlBytes));
  entry.plan_fingerprint = PlanFingerprint(root);
  observe::StatsScope scope;
  const auto t0 = std::chrono::steady_clock::now();
  auto finish = [&](bool ok, uint64_t rows) {
    entry.ok = ok;
    entry.rows_out = rows;
    entry.wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    entry.cpu_ns = scope.CpuNs();
    for (int i = 0; i < observe::kNumQueryCounters; ++i) {
      entry.counters[static_cast<size_t>(i)] =
          scope.value(static_cast<observe::QueryCounter>(i));
    }
    observe::SetLastJournalIdOnThread(entry.id);
    journal.Record(std::move(entry));
  };

  Result<BuiltPlan> build = BuildExecutable(root);
  if (!build.ok()) {
    finish(false, 0);
    return build.status();
  }
  BuiltPlan built = build.MoveValue();
  observe::TraceSpan span("execute", "query");
  std::vector<Block> blocks;
  if (Status st = DrainOperator(built.op.get(), &blocks); !st.ok()) {
    // A failed drain skips Close, so tear the tree down first: operator
    // destructors join any worker threads, completing attribution before
    // the entry's counters are snapshotted.
    built.op.reset();
    finish(false, 0);
    return st;
  }
  QueryResult result(built.op->output_schema(), std::move(blocks));
  if (built.stats != nullptr) {
    auto qs = std::make_shared<observe::QueryStats>();
    qs->root = std::move(built.stats);
    qs->notes = std::move(built.notes);
    qs->journal_id = entry.id;
    qs->total_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    observe::MetricsRegistry& reg = observe::MetricsRegistry::Global();
    reg.GetCounter("query.executed")->Add();
    reg.GetCounter("query.rows_returned")->Add(result.num_rows());
    reg.GetHistogram("query.latency_us")->Record(qs->total_ns / 1000);
    result.set_stats(std::move(qs));
  }
  finish(true, result.num_rows());
  return result;
}

std::string QueryResult::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    if (c > 0) out += ",";
    out += schema_.field(c).name;
  }
  out += "\n";
  for (uint64_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      if (c > 0) out += ",";
      std::string v = ValueString(r, c);
      if (schema_.field(c).type == TypeId::kString &&
          (v.find(',') != std::string::npos ||
           v.find('"') != std::string::npos ||
           v.find('\n') != std::string::npos)) {
        std::string quoted = "\"";
        for (char ch : v) {
          if (ch == '"') quoted += '"';
          quoted += ch;
        }
        quoted += "\"";
        v = std::move(quoted);
      }
      out += v;
    }
    out += "\n";
  }
  return out;
}

Result<std::string> ExplainPlan(const Plan& plan) {
  TDE_ASSIGN_OR_RETURN(PlanNodePtr optimized, StrategicOptimize(plan.root()));
  TDE_ASSIGN_OR_RETURN(BuiltPlan built, BuildExecutable(optimized));
  std::string out = PlanToString(optimized);
  if (!built.notes.empty()) {
    out += "tactical decisions:\n";
    for (const std::string& n : built.notes) {
      out += "  " + n + "\n";
    }
  }
  return out;
}

Result<QueryResult> ExecutePlan(const Plan& plan) {
  TDE_ASSIGN_OR_RETURN(PlanNodePtr optimized, StrategicOptimize(plan.root()));
  return ExecutePlanNode(optimized);
}

Result<std::string> ExplainAnalyzePlan(const Plan& plan,
                                       QueryResult* result) {
  // Force collection on for the duration: EXPLAIN ANALYZE without numbers
  // would be useless.
  const bool was_enabled = observe::StatsEnabled();
  observe::SetStatsEnabled(true);
  Result<QueryResult> run = ExecutePlan(plan);
  observe::SetStatsEnabled(was_enabled);
  TDE_RETURN_NOT_OK(run.status());
  std::string out = run.value().stats() != nullptr
                        ? run.value().stats()->ToString()
                        : "(no stats collected)\n";
  if (result != nullptr) *result = run.MoveValue();
  return out;
}

}  // namespace tde
