#ifndef TDE_PLAN_EXECUTOR_H_
#define TDE_PLAN_EXECUTOR_H_

#include <memory>
#include <string>

#include "src/observe/query_stats.h"
#include "src/plan/plan.h"
#include "src/plan/tactical.h"

namespace tde {

/// A lowered plan: the operator tree plus the column properties derived
/// while lowering (which the tactical optimizer consumed along the way).
struct BuiltPlan {
  std::unique_ptr<Operator> op;
  PropMap props;
  /// Non-empty when the operator's output is known to arrive grouped on
  /// this column (contiguous key runs) — enables ordered aggregation.
  std::string grouped_on;
  /// Human-readable record of the tactical decisions made while lowering
  /// (join strategy, hash algorithm, index sorting), for EXPLAIN output.
  std::vector<std::string> notes;
  /// Root of the per-operator stats tree `op` records into (null when
  /// stats collection is disabled). Mirrors the lowered operator tree.
  std::shared_ptr<observe::OperatorStats> stats;
};

/// Lowers a logical plan to an executable operator tree, making tactical
/// decisions (join strategy, hash algorithm, ordered aggregation, index
/// sorting) from derived metadata.
Result<BuiltPlan> BuildExecutable(const PlanNodePtr& node);

/// A fully materialized query result.
class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(Schema schema, std::vector<Block> blocks);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Lane at (row, col).
  Lane Value(uint64_t row, size_t col) const;
  /// Formatted value at (row, col) — strings resolved through their heap.
  std::string ValueString(uint64_t row, size_t col) const;

  const std::vector<Block>& blocks() const { return blocks_; }

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(uint64_t max_rows = 20) const;

  /// Renders the whole result as CSV (header row, quoted strings).
  std::string ToCsv() const;

  /// The runtime profile collected while the query ran (per-operator rows,
  /// blocks and wall time plus tactical notes). Null when stats collection
  /// was disabled or the result was not produced by the executor.
  const observe::QueryStats* stats() const { return stats_.get(); }
  void set_stats(std::shared_ptr<const observe::QueryStats> s) {
    stats_ = std::move(s);
  }

 private:
  const ColumnVector* Locate(uint64_t row, size_t col, size_t* offset) const;

  Schema schema_;
  std::vector<Block> blocks_;
  uint64_t rows_ = 0;
  std::shared_ptr<const observe::QueryStats> stats_;
};

/// Optimizes (strategic), lowers (tactical) and runs a plan.
Result<QueryResult> ExecutePlan(const Plan& plan);
/// Runs an already-optimized plan tree.
Result<QueryResult> ExecutePlanNode(const PlanNodePtr& root);

/// EXPLAIN: the strategically optimized plan tree plus the tactical
/// decisions the executor would make (join strategy, hash algorithm,
/// index ordering). Lowers the plan — building inner dictionary tables
/// and indexes — but does not run it.
Result<std::string> ExplainPlan(const Plan& plan);

/// EXPLAIN ANALYZE: optimizes, lowers and *runs* the plan, returning the
/// operator tree annotated with per-operator rows, blocks and wall time,
/// followed by the tactical notes. The executed result is copied out
/// through `result` when non-null (stats collection is forced on for the
/// duration of the call).
Result<std::string> ExplainAnalyzePlan(const Plan& plan,
                                       QueryResult* result = nullptr);

}  // namespace tde

#endif  // TDE_PLAN_EXECUTOR_H_
