#ifndef TDE_PLAN_PLAN_H_
#define TDE_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/exchange.h"
#include "src/exec/flow_table.h"
#include "src/exec/hash_aggregate.h"
#include "src/exec/hash_join.h"
#include "src/exec/project.h"
#include "src/exec/sort.h"
#include "src/storage/table.h"

namespace tde {

enum class PlanNodeKind {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kSort,
  kJoinTable,      // explicit many-to-one join against a stored table
  kInvisibleJoin,  // decompression join against a DictionaryTable (4.1)
  kIndexedScan,    // rank join against an IndexTable (4.2)
  kExchange,
  kMaterialize,    // FlowTable sink
  kLimit,
  kTopN,           // Limit-over-Sort fused into a bounded heap
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// A logical plan node. The strategic optimizer rewrites trees of these;
/// the executor lowers them to operators, making tactical choices from
/// derived metadata as it goes.
struct PlanNode {
  PlanNodeKind kind;
  std::vector<PlanNodePtr> children;

  // kScan
  std::shared_ptr<const Table> table;
  std::vector<std::string> columns;        // empty = all
  std::vector<std::string> token_columns;  // emitted as "<c>$token"
  /// Group-by keys emitted as dense dictionary codes with the entry table
  /// attached (set by the dict-grouping rewrite; cleared when
  /// StrategicOptions::enable_dict_grouping is off).
  std::vector<std::string> code_columns;

  // kFilter
  ExprPtr predicate;
  /// Lowering may evaluate eligible predicate subtrees in the compressed
  /// (dictionary-code) domain. Cleared by the strategic optimizer when
  /// StrategicOptions::enable_dict_predicates is off.
  bool compressed_eval = true;

  // kProject
  std::vector<ProjectedColumn> projections;

  // kAggregate
  AggregateOptions agg;
  /// Input is known grouped on the key: use ordered aggregation.
  bool grouped_input = false;
  /// Force hash aggregation even over grouped input (benchmark control).
  bool force_hash_agg = false;
  /// Lowering may group string keys on per-heap dictionary codes with late
  /// key materialization. Cleared by the strategic optimizer when
  /// StrategicOptions::enable_dict_grouping is off.
  bool compressed_agg = true;
  /// Set by the run-aggregation rewrite: the child is an IndexedScan over
  /// the aggregate's only input column, and every aggregate folds whole
  /// (value, count) runs in O(1) instead of consuming expanded rows.
  bool fold_runs = false;
  /// Set by the metadata-aggregate rewrite: one answer lane per aggregate
  /// spec, computed from directory facts. The scan child is kept for
  /// schema derivation but never built or opened.
  bool metadata_answered = false;
  std::vector<Lane> metadata_row;

  // kSort / kTopN
  std::vector<SortKey> sort_keys;
  /// Lowering may compare string sort keys in the integer domain (raw
  /// tokens of a sorted heap, else a per-heap code->rank cache). Cleared by
  /// the strategic optimizer when StrategicOptions::enable_dict_sort is
  /// off.
  bool dict_sort = true;

  // kTopN (also uses `limit`)
  /// The executor may split a Top-N directly over a scan into per-segment
  /// sources and skip segments whose zone map cannot beat the heap's
  /// current worst row. Cleared when
  /// StrategicOptions::enable_sort_pruning is off.
  bool sort_pruning = true;

  // kJoinTable
  std::shared_ptr<const Table> inner_table;
  HashJoinOptions join;

  // kInvisibleJoin: expand dictionary-compressed column `dict_column` of
  // the child scan through a DictionaryTable; `inner_predicate` and
  // `inner_projections` were pushed down to the dictionary side.
  std::string dict_column;
  ExprPtr inner_predicate;
  std::vector<ProjectedColumn> inner_projections;

  // kIndexedScan: rank-join the RLE column `index_column` of `table`.
  std::string index_column;
  ExprPtr index_predicate;
  /// Sort the index by value before scanning (ordered retrieval, 4.2.2);
  /// when unset the executor decides tactically.
  std::optional<bool> sort_index_by_value;
  /// Set by the run-sort rewrite (an ORDER BY on an RLE column became
  /// ordered run retrieval): sorting touched runs, not rows — counted as
  /// sort.runs_sorted.
  bool sort_runs = false;
  std::vector<std::string> payload;

  // kExchange
  /// <= 0 sizes the exchange from the shared scheduler pool at build time
  /// (TaskScheduler::SuggestedQueryParallelism).
  int exchange_workers = 0;
  bool order_preserving = false;

  // kMaterialize
  FlowTableOptions flow;

  // kLimit
  uint64_t limit = 0;
  /// Rows a metadata-pruned filter proved away (set on the LIMIT 0 node
  /// that replaces it, for metrics and EXPLAIN ANALYZE).
  uint64_t pruned_rows = 0;
};

/// Fluent builder for logical plans.
class Plan {
 public:
  static Plan Scan(std::shared_ptr<const Table> table,
                   std::vector<std::string> columns = {});

  Plan Filter(ExprPtr predicate) &&;
  Plan Project(std::vector<ProjectedColumn> projections) &&;
  Plan Aggregate(std::vector<std::string> group_by,
                 std::vector<AggSpec> aggs) &&;
  Plan OrderBy(std::vector<SortKey> keys) &&;
  Plan Join(std::shared_ptr<const Table> inner, HashJoinOptions join) &&;
  Plan ExchangeBy(int workers, bool order_preserving = false) &&;
  Plan Limit(uint64_t n) &&;
  Plan Materialize(FlowTableOptions options = {}) &&;

  const PlanNodePtr& root() const { return root_; }

 private:
  PlanNodePtr root_;
};

/// Pretty-prints a plan tree (one node per line, indented).
std::string PlanToString(const PlanNodePtr& node);

/// Deep-copies a plan tree. Strategic optimization rewrites node fields in
/// place (predicates are reassigned, scan column lists narrowed, rewrite
/// flags cleared), so executing one parsed plan twice — or under different
/// StrategicOptions — requires a fresh tree each time. Expressions and
/// tables are immutable after construction and stay shared.
PlanNodePtr ClonePlan(const PlanNodePtr& node);

}  // namespace tde

#endif  // TDE_PLAN_PLAN_H_
