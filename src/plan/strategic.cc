#include "src/plan/strategic.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/encoding/header.h"

namespace tde {

namespace {

/// True if `pred` references exactly one column, and that column is `name`.
bool PredicateOnlyOn(const ExprPtr& pred, const std::string& name) {
  std::vector<std::string> cols;
  pred->CollectColumns(&cols);
  if (cols.empty()) return false;
  return std::all_of(cols.begin(), cols.end(),
                     [&](const std::string& c) { return c == name; });
}

/// The single column a predicate references, if exactly one.
bool SingleColumn(const ExprPtr& pred, std::string* name) {
  std::vector<std::string> cols;
  pred->CollectColumns(&cols);
  if (cols.empty()) return false;
  for (const auto& c : cols) {
    if (c != cols[0]) return false;
  }
  *name = cols[0];
  return true;
}

/// Rule 1 (Sect. 4.1): Filter over Scan, predicate on one
/// dictionary-compressed column -> InvisibleJoin with the filter pushed to
/// the dictionary side.
PlanNodePtr TryInvisibleJoin(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;
  std::string col_name;
  if (!SingleColumn(filter->predicate, &col_name)) return nullptr;
  auto col_r = scan->table->ColumnByName(col_name);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  if (col->compression() == CompressionKind::kNone) return nullptr;
  // A dictionary table only pays when the domain is small.
  // encoding_type() answers from the directory for cold columns, so this
  // strategic decision never faults data in.
  if (!col->metadata().cardinality_known &&
      col->encoding_type() != EncodingType::kDictionary) {
    return nullptr;
  }

  auto join = std::make_shared<PlanNode>();
  join->kind = PlanNodeKind::kInvisibleJoin;
  join->dict_column = col_name;
  join->inner_predicate = filter->predicate;
  join->children.push_back(scan);
  return join;
}

/// Rule 2 (Sect. 4.2): Aggregate(group by c) over Filter(pred on c) over
/// Scan, with c run-length encoded -> IndexedScan + aggregation. Whether
/// the index is additionally sorted for ordered aggregation is a tactical
/// decision made at execution time from the actual run lengths.
PlanNodePtr TryRankJoin(const PlanNodePtr& agg) {
  if (agg->kind != PlanNodeKind::kAggregate) return nullptr;
  if (agg->agg.group_by.size() != 1) return nullptr;
  const PlanNodePtr& filter = agg->children[0];
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;
  const std::string& key = agg->agg.group_by[0];
  if (!PredicateOnlyOn(filter->predicate, key)) return nullptr;
  auto col_r = scan->table->ColumnByName(key);
  if (!col_r.ok()) return nullptr;
  if (col_r.value()->encoding_type() != EncodingType::kRunLength) {
    return nullptr;
  }

  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = scan->table;
  iscan->index_column = key;
  iscan->index_predicate = filter->predicate;
  for (const AggSpec& a : agg->agg.aggs) {
    if (a.kind != AggKind::kCountStar && a.input != key) {
      iscan->payload.push_back(a.input);
    }
  }
  // Deduplicate payload names.
  std::sort(iscan->payload.begin(), iscan->payload.end());
  iscan->payload.erase(
      std::unique(iscan->payload.begin(), iscan->payload.end()),
      iscan->payload.end());

  auto new_agg = std::make_shared<PlanNode>(*agg);
  new_agg->children = {iscan};
  return new_agg;
}

// --- Metadata pruning (Sect. 3.4.2 applied to filtering) ------------------

/// Three-valued verdict of folding a predicate against column metadata:
/// provably false for every row, provably true for every row, or unknown.
enum class Tri { kFalse, kTrue, kUnknown };

/// Types whose lanes order like their values. Reals are excluded (lane
/// bits do not order like doubles) and so are strings (lanes are heap
/// tokens).
bool LaneComparable(TypeId t) {
  return t == TypeId::kInteger || t == TypeId::kDate ||
         t == TypeId::kDateTime || t == TypeId::kBool;
}

/// Folds `col OP v` against min/max/nullability. The encoder's min
/// includes the NULL sentinel when NULLs are present (it is INT64_MIN
/// then), so min-based always-false tests simply never fire on nullable
/// columns; max is the true maximum of non-NULL values either way.
/// Always-TRUE verdicts additionally require a proven absence of NULLs,
/// because a NULL row makes any comparison false.
Tri FoldCompare(CompareOp op, const ColumnMetadata& m, Lane v) {
  if (v == kNullSentinel) return Tri::kFalse;  // x OP NULL is false
  if (!m.min_max_known) return Tri::kUnknown;
  const bool no_nulls = m.null_known && !m.has_nulls;
  const Lane min = m.min_value;
  const Lane max = m.max_value;
  switch (op) {
    case CompareOp::kEq:
      if (v < min || v > max) return Tri::kFalse;
      if (no_nulls && min == max && v == min) return Tri::kTrue;
      break;
    case CompareOp::kNe:
      if (no_nulls && min == max && v == min) return Tri::kFalse;
      if (no_nulls && (v < min || v > max)) return Tri::kTrue;
      break;
    case CompareOp::kLt:
      if (min >= v) return Tri::kFalse;
      if (no_nulls && max < v) return Tri::kTrue;
      break;
    case CompareOp::kLe:
      if (min > v) return Tri::kFalse;
      if (no_nulls && max <= v) return Tri::kTrue;
      break;
    case CompareOp::kGt:
      if (max <= v) return Tri::kFalse;
      if (no_nulls && min > v) return Tri::kTrue;
      break;
    case CompareOp::kGe:
      if (max < v) return Tri::kFalse;
      if (no_nulls && min >= v) return Tri::kTrue;
      break;
  }
  return Tri::kUnknown;
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

/// Substitutes one column's metadata during a fold: segment pruning folds
/// the same predicate once per segment with that segment's zone map in
/// place of the column-level metadata.
struct MetaOverride {
  const std::string* column = nullptr;
  const ColumnMetadata* meta = nullptr;
};

const ColumnMetadata& MetaFor(const Column& c, const MetaOverride* ov) {
  if (ov != nullptr && c.name() == *ov->column) return *ov->meta;
  return c.metadata();
}

/// Recursive fold of a filter predicate against the scan table's column
/// metadata — every fact consulted (type, metadata) answers from the
/// directory for cold columns, so pruning never faults data in.
Tri FoldAgainstMetadata(const ExprPtr& e, const Table& table,
                        const MetaOverride* ov = nullptr) {
  TypeId lt;
  Lane lv;
  if (e->AsLiteral(&lt, &lv) && lt == TypeId::kBool) {
    // A NULL boolean filters like false (the mask keeps lanes == 1 only).
    return lv == 1 ? Tri::kTrue : Tri::kFalse;
  }
  std::vector<ExprPtr> kids = e->Children();
  CompareOp op;
  if (e->AsCompare(&op) && kids.size() == 2) {
    const std::string* col = kids[0]->AsColumnRef();
    ExprPtr lit = kids[1];
    if (col == nullptr) {
      col = kids[1]->AsColumnRef();
      lit = kids[0];
      op = FlipCompare(op);
    }
    TypeId vt;
    Lane v;
    if (col == nullptr || !lit->AsLiteral(&vt, &v)) return Tri::kUnknown;
    auto c = table.ColumnByName(*col);
    if (!c.ok() || !LaneComparable(c.value()->type()) ||
        vt == TypeId::kReal || vt == TypeId::kString) {
      return Tri::kUnknown;
    }
    return FoldCompare(op, MetaFor(*c.value(), ov), v);
  }
  switch (e->Shape()) {
    case ExprShape::kNot: {
      const Tri t = FoldAgainstMetadata(kids[0], table, ov);
      if (t == Tri::kFalse) return Tri::kTrue;
      if (t == Tri::kTrue) return Tri::kFalse;
      return Tri::kUnknown;
    }
    case ExprShape::kAnd: {
      const Tri a = FoldAgainstMetadata(kids[0], table, ov);
      const Tri b = FoldAgainstMetadata(kids[1], table, ov);
      if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
      if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
      return Tri::kUnknown;
    }
    case ExprShape::kOr: {
      const Tri a = FoldAgainstMetadata(kids[0], table, ov);
      const Tri b = FoldAgainstMetadata(kids[1], table, ov);
      if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
      if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
      return Tri::kUnknown;
    }
    case ExprShape::kIsNull: {
      const std::string* col = kids[0]->AsColumnRef();
      if (col == nullptr) return Tri::kUnknown;
      auto c = table.ColumnByName(*col);
      if (!c.ok()) return Tri::kUnknown;
      const ColumnMetadata& m = MetaFor(*c.value(), ov);
      if (m.null_known && !m.has_nulls) return Tri::kFalse;
      if (m.null_known && m.has_nulls && m.min_max_known &&
          m.max_value == kNullSentinel) {
        return Tri::kTrue;  // the sentinel is the max: every row is NULL
      }
      return Tri::kUnknown;
    }
    case ExprShape::kIn: {
      const std::string* col = kids[0]->AsColumnRef();
      if (col == nullptr || kids.size() < 2) return Tri::kUnknown;
      auto c = table.ColumnByName(*col);
      if (!c.ok() || !LaneComparable(c.value()->type())) return Tri::kUnknown;
      const ColumnMetadata& m = MetaFor(*c.value(), ov);
      bool any_unknown = false;
      for (size_t i = 1; i < kids.size(); ++i) {
        TypeId vt;
        Lane v;
        if (!kids[i]->AsLiteral(&vt, &v)) return Tri::kUnknown;
        if (v == kNullSentinel) continue;  // a NULL element never matches
        if (vt == TypeId::kReal || vt == TypeId::kString) return Tri::kUnknown;
        const Tri t = FoldCompare(CompareOp::kEq, m, v);
        if (t == Tri::kTrue) return Tri::kTrue;
        if (t != Tri::kFalse) any_unknown = true;
      }
      return any_unknown ? Tri::kUnknown : Tri::kFalse;
    }
    case ExprShape::kOther:
      break;
  }
  return Tri::kUnknown;
}

/// Metadata pruning rule: Filter over Scan whose predicate folds. FALSE
/// becomes LIMIT 0 over the (never-opened) scan — schema preserved, zero
/// columns faulted in; TRUE dissolves the filter.
PlanNodePtr TryMetadataPrune(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr) {
    return nullptr;
  }
  switch (FoldAgainstMetadata(filter->predicate, *scan->table)) {
    case Tri::kTrue:
      return scan;
    case Tri::kFalse: {
      auto limit = std::make_shared<PlanNode>();
      limit->kind = PlanNodeKind::kLimit;
      limit->limit = 0;
      limit->pruned_rows = scan->table->rows();
      limit->children = {scan};
      return limit;
    }
    case Tri::kUnknown:
      break;
  }
  return nullptr;
}

// --- Run-level predicate evaluation (Sect. 4.2 beyond aggregation) --------

/// Filter over Scan, single-column predicate on an uncompressed run-length
/// column -> IndexedScan evaluating the predicate once per run (emitting
/// or skipping whole runs, in physical row order) under a Project that
/// restores the scan's column order. Runs as a separate pass AFTER the
/// main rewrite so TryRankJoin keeps first claim on aggregate shapes, and
/// after scan pruning so the payload reflects only the columns actually
/// read.
PlanNodePtr TryRunFilter(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr ||
      !scan->token_columns.empty()) {
    return nullptr;
  }
  std::string c;
  if (!SingleColumn(filter->predicate, &c)) return nullptr;
  auto col_r = scan->table->ColumnByName(c);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  // encoding_type() answers from the directory for cold columns. Restrict
  // to uncompressed scalars: runs of heap/dictionary tokens would need the
  // dictionary to evaluate, which the dict-code rewrite already covers.
  if (col->encoding_type() != EncodingType::kRunLength ||
      col->compression() != CompressionKind::kNone) {
    return nullptr;
  }
  std::vector<std::string> out_cols = scan->columns;
  if (out_cols.empty()) {
    for (size_t i = 0; i < scan->table->num_columns(); ++i) {
      out_cols.push_back(scan->table->column(i).name());
    }
  }
  if (std::find(out_cols.begin(), out_cols.end(), c) == out_cols.end()) {
    return nullptr;  // predicate column not in the scan's output
  }

  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = scan->table;
  iscan->index_column = c;
  iscan->index_predicate = filter->predicate;
  // Keep physical row order: a filter must not reorder its input.
  iscan->sort_index_by_value = false;
  for (const std::string& n : out_cols) {
    if (n != c) iscan->payload.push_back(n);
  }
  auto project = std::make_shared<PlanNode>();
  project->kind = PlanNodeKind::kProject;
  for (const std::string& n : out_cols) {
    project->projections.push_back({expr::Col(n), n});
  }
  project->children = {iscan};
  return project;
}

void PushRunFilters(PlanNodePtr* node) {
  for (auto& c : (*node)->children) PushRunFilters(&c);
  if (PlanNodePtr next = TryRunFilter(*node)) *node = std::move(next);
}

// --- Compressed-domain ordering -------------------------------------------

/// Limit over Sort -> TopN: the limit bounds how many rows can ever
/// surface, so the sort keeps a k-row heap instead of materializing and
/// ordering everything. Output (order, ties, NULL placement) is identical
/// to the full sort; only the work changes.
PlanNodePtr TryTopN(const PlanNodePtr& limit) {
  if (limit->kind != PlanNodeKind::kLimit) return nullptr;
  const PlanNodePtr& sort = limit->children[0];
  if (sort->kind != PlanNodeKind::kSort || sort->sort_keys.empty()) {
    return nullptr;
  }
  auto topn = std::make_shared<PlanNode>();
  topn->kind = PlanNodeKind::kTopN;
  topn->sort_keys = sort->sort_keys;
  topn->limit = limit->limit;
  topn->dict_sort = sort->dict_sort;
  topn->children = sort->children;
  return topn;
}

/// Sort over Scan on a single ascending run-length key -> ordered run
/// retrieval (Sect. 4.2.2): the IndexedScan sorts the *run index* by value
/// and emits whole runs in key order, so an ORDER BY over n rows in r runs
/// sorts r entries. Runs keep their physical order within equal values,
/// which is exactly the stable sort's tie-break. Post-pass like
/// TryRunFilter, so the Top-N rewrite keeps first claim on Limit-covered
/// sorts and scan pruning has already narrowed the payload.
PlanNodePtr TrySortRuns(const PlanNodePtr& sort) {
  if (sort->kind != PlanNodeKind::kSort || sort->sort_keys.size() != 1 ||
      !sort->sort_keys[0].ascending) {
    return nullptr;
  }
  const PlanNodePtr& scan = sort->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr ||
      !scan->token_columns.empty() || !scan->code_columns.empty()) {
    return nullptr;
  }
  const std::string& c = sort->sort_keys[0].column;
  auto col_r = scan->table->ColumnByName(c);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  // Directory facts only. SortIndexByValue orders runs by raw lane (NULL
  // sentinel first, matching ascending NULL placement), so the key must be
  // lane-comparable and uncompressed — token or code runs would sort by
  // the wrong domain.
  if (col->encoding_type() != EncodingType::kRunLength ||
      col->compression() != CompressionKind::kNone ||
      !LaneComparable(col->type())) {
    return nullptr;
  }
  std::vector<std::string> out_cols = scan->columns;
  if (out_cols.empty()) {
    for (size_t i = 0; i < scan->table->num_columns(); ++i) {
      out_cols.push_back(scan->table->column(i).name());
    }
  }
  if (std::find(out_cols.begin(), out_cols.end(), c) == out_cols.end()) {
    return nullptr;
  }

  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = scan->table;
  iscan->index_column = c;
  iscan->sort_index_by_value = true;
  iscan->sort_runs = true;
  for (const std::string& n : out_cols) {
    if (n != c) iscan->payload.push_back(n);
  }
  auto project = std::make_shared<PlanNode>();
  project->kind = PlanNodeKind::kProject;
  for (const std::string& n : out_cols) {
    project->projections.push_back({expr::Col(n), n});
  }
  project->children = {iscan};
  return project;
}

void PushSortRuns(PlanNodePtr* node) {
  for (auto& c : (*node)->children) PushSortRuns(&c);
  if (PlanNodePtr next = TrySortRuns(*node)) *node = std::move(next);
}

void DisableDictSort(const PlanNodePtr& node) {
  node->dict_sort = false;
  for (const auto& c : node->children) DisableDictSort(c);
}

void DisableSortPruning(const PlanNodePtr& node) {
  node->sort_pruning = false;
  for (const auto& c : node->children) DisableSortPruning(c);
}

void DisableDictPredicates(const PlanNodePtr& node) {
  node->compressed_eval = false;
  for (const auto& c : node->children) DisableDictPredicates(c);
}

void DisableDictGrouping(const PlanNodePtr& node) {
  node->compressed_agg = false;
  node->agg.dict_code_keys = false;
  node->code_columns.clear();
  for (const auto& c : node->children) DisableDictGrouping(c);
}

// --- Compressed-domain aggregation (Sect. 4 applied to GROUP BY) ----------

/// Answers one whole-table aggregate from directory facts alone. Every
/// fact consulted (rows, type, metadata) is a directory read, so answering
/// never faults a cold column through the pager. Returns false when the
/// metadata cannot prove the answer.
bool AnswerAggFromMetadata(const AggSpec& spec, const Table& table,
                           Lane* out) {
  const uint64_t rows = table.rows();
  if (spec.kind == AggKind::kCountStar) {
    *out = static_cast<Lane>(rows);
    return true;
  }
  auto col_r = table.ColumnByName(spec.input);
  if (!col_r.ok()) return false;
  const auto& col = col_r.value();
  const ColumnMetadata& m = col->metadata();
  if (rows == 0) {
    // Empty input: COUNT/COUNTD are 0, every other aggregate is NULL.
    switch (spec.kind) {
      case AggKind::kCount:
      case AggKind::kCountDistinct:
        *out = 0;
        return true;
      default:
        *out = kNullSentinel;
        return true;
    }
  }
  const bool no_nulls = m.null_known && !m.has_nulls;
  // The encoder's min/max span raw lanes, sentinel included: max equals
  // the sentinel exactly when every row is NULL (the sentinel is the
  // domain minimum, so any non-NULL value would exceed it).
  const bool all_null =
      m.null_known && m.has_nulls && m.min_max_known &&
      m.max_value == kNullSentinel;
  switch (spec.kind) {
    case AggKind::kCount:
      if (no_nulls) {
        *out = static_cast<Lane>(rows);
        return true;
      }
      if (all_null) {
        *out = 0;
        return true;
      }
      return false;
    case AggKind::kMin:
      // min includes the sentinel when NULLs are present, so it only
      // equals MIN over non-NULL values when there are none.
      if (all_null) {
        *out = kNullSentinel;
        return true;
      }
      if (LaneComparable(col->type()) && m.min_max_known && no_nulls) {
        *out = m.min_value;
        return true;
      }
      return false;
    case AggKind::kMax:
      // max is the maximum non-NULL lane either way; when every row is
      // NULL it degenerates to the sentinel, which renders as NULL.
      if (LaneComparable(col->type()) && m.min_max_known && m.null_known) {
        *out = m.max_value;
        return true;
      }
      return false;
    case AggKind::kCountDistinct:
      if (all_null) {
        *out = 0;
        return true;
      }
      // cardinality counts distinct raw lanes, the sentinel included.
      if (m.cardinality_known && m.null_known) {
        *out = static_cast<Lane>(m.cardinality - (m.has_nulls ? 1 : 0));
        return true;
      }
      // unique: every lane distinct, so at most one of them is the
      // sentinel.
      if (m.unique && m.null_known) {
        *out = static_cast<Lane>(rows - (m.has_nulls ? 1 : 0));
        return true;
      }
      return false;
    default:
      return false;  // SUM/AVG/MEDIAN need the data
  }
}

/// Metadata short-circuit: a whole-table aggregate (no GROUP BY) over a
/// bare scan where *every* spec is provable from the directory. The node
/// keeps its scan child for schema derivation, but the executor emits the
/// answer row directly and never builds the scan.
PlanNodePtr TryMetadataAggregate(const PlanNodePtr& agg) {
  if (agg->kind != PlanNodeKind::kAggregate || agg->metadata_answered ||
      agg->fold_runs) {
    return nullptr;
  }
  if (!agg->agg.group_by.empty() || agg->agg.aggs.empty()) return nullptr;
  const PlanNodePtr& scan = agg->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr ||
      !scan->token_columns.empty()) {
    return nullptr;
  }
  std::vector<Lane> row;
  row.reserve(agg->agg.aggs.size());
  for (const AggSpec& spec : agg->agg.aggs) {
    Lane v;
    if (!AnswerAggFromMetadata(spec, *scan->table, &v)) return nullptr;
    row.push_back(v);
  }
  auto done = std::make_shared<PlanNode>(*agg);
  done->metadata_answered = true;
  done->metadata_row = std::move(row);
  return done;
}

/// Run-level aggregate folding (Sect. 4.2): Aggregate over a bare Scan
/// where every aggregate reads one run-length encoded column (or is
/// COUNT(*)) and the GROUP BY is empty or on that same column. The
/// aggregation then consumes the IndexTable and folds each (value, count)
/// run in O(1) instead of expanding rows.
PlanNodePtr TryRunFoldAggregate(const PlanNodePtr& agg) {
  if (agg->kind != PlanNodeKind::kAggregate || agg->metadata_answered ||
      agg->fold_runs) {
    return nullptr;
  }
  if (agg->agg.group_by.size() > 1) return nullptr;
  const PlanNodePtr& scan = agg->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr ||
      !scan->token_columns.empty()) {
    return nullptr;
  }
  // The fold column: the grouping key, or the single column every
  // whole-table aggregate reads.
  std::string c;
  if (!agg->agg.group_by.empty()) {
    c = agg->agg.group_by[0];
  }
  for (const AggSpec& a : agg->agg.aggs) {
    if (a.kind == AggKind::kCountStar) continue;
    if (c.empty()) c = a.input;
    if (a.input != c) return nullptr;
    if (!agg_internal::FoldableOverRuns(a.kind)) return nullptr;
  }
  if (c.empty()) return nullptr;  // COUNT(*) only: metadata rule territory
  if (agg->agg.group_by.empty() && agg->agg.aggs.empty()) return nullptr;
  auto col_r = scan->table->ColumnByName(c);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  // Directory facts only. kArrayDict runs carry dictionary codes, not
  // values, and folding a real SUM multiplies where the row path adds —
  // different rounding — so both stay on the row path.
  if (col->encoding_type() != EncodingType::kRunLength) return nullptr;
  if (col->compression() == CompressionKind::kArrayDict) return nullptr;
  if (col->type() == TypeId::kReal) return nullptr;

  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = scan->table;
  iscan->index_column = c;
  iscan->sort_index_by_value = false;  // fold in physical run order
  auto new_agg = std::make_shared<PlanNode>(*agg);
  new_agg->fold_runs = true;
  new_agg->children = {iscan};
  return new_agg;
}

/// Dict-code scans for group-by keys: a dictionary-encoded string key is
/// emitted as dense codes (the scan skips the per-row entry decode) and
/// the aggregate decodes one key per group at first occurrence. Keys an
/// aggregate also reads as input stay decoded — COUNT/MIN/MAX over codes
/// would see indexes, not values.
PlanNodePtr TryDictCodeScan(const PlanNodePtr& agg) {
  if (agg->kind != PlanNodeKind::kAggregate || agg->metadata_answered ||
      agg->fold_runs || agg->grouped_input || !agg->compressed_agg ||
      !agg->agg.dict_code_keys || agg->agg.group_by.empty()) {
    return nullptr;
  }
  const PlanNodePtr& scan = agg->children[0];
  if (scan->kind != PlanNodeKind::kScan || scan->table == nullptr ||
      !scan->token_columns.empty() || !scan->code_columns.empty()) {
    return nullptr;
  }
  std::vector<std::string> coded;
  for (const std::string& c : agg->agg.group_by) {
    bool read_by_agg = false;
    for (const AggSpec& a : agg->agg.aggs) {
      if (a.kind != AggKind::kCountStar && a.input == c) {
        read_by_agg = true;
        break;
      }
    }
    if (read_by_agg) continue;
    auto col_r = scan->table->ColumnByName(c);
    if (!col_r.ok()) continue;
    const auto& col = col_r.value();
    if (col->type() != TypeId::kString ||
        col->compression() != CompressionKind::kHeap ||
        col->encoding_type() != EncodingType::kDictionary) {
      continue;
    }
    coded.push_back(c);
  }
  if (coded.empty()) return nullptr;
  auto new_scan = std::make_shared<PlanNode>(*scan);
  new_scan->code_columns = std::move(coded);
  auto new_agg = std::make_shared<PlanNode>(*agg);
  new_agg->children = {new_scan};
  return new_agg;
}

/// Rule 3 (Sect. 4.3): encodings are sensitive to data order, so any
/// exchange feeding an encoding sink must use order-preserving routing.
void EnforceOrderedExchange(const PlanNodePtr& node, bool under_encoder) {
  if (node->kind == PlanNodeKind::kMaterialize) under_encoder = true;
  if (node->kind == PlanNodeKind::kExchange && under_encoder) {
    node->order_preserving = true;
  }
  for (const auto& c : node->children) {
    EnforceOrderedExchange(c, under_encoder);
  }
}

/// Expression simplification (Sect. 2.3.1) over a node's expressions.
/// Returns a replacement node when the node itself dissolves (a filter
/// whose predicate folded to TRUE).
PlanNodePtr SimplifyNode(const PlanNodePtr& node) {
  if (node->predicate != nullptr) {
    node->predicate = expr::Simplify(node->predicate);
  }
  if (node->inner_predicate != nullptr) {
    node->inner_predicate = expr::Simplify(node->inner_predicate);
  }
  if (node->index_predicate != nullptr) {
    node->index_predicate = expr::Simplify(node->index_predicate);
  }
  for (auto& pc : node->projections) pc.expr = expr::Simplify(pc.expr);
  for (auto& pc : node->inner_projections) pc.expr = expr::Simplify(pc.expr);
  if (node->kind == PlanNodeKind::kFilter) {
    TypeId t;
    Lane v;
    if (node->predicate->AsLiteral(&t, &v) && t == TypeId::kBool && v == 1) {
      return node->children[0];  // WHERE TRUE dissolves
    }
  }
  return nullptr;
}

/// Computation move-around (Sect. 2.3.1 / 4.1.2): a Project over a Scan
/// whose computed expressions all read one dictionary-compressed column
/// becomes an InvisibleJoin with the computations pushed to the dictionary
/// side — the Sect. 4.1.2 scenario, where EXTENSION(url) runs once per
/// distinct URL instead of once per row.
PlanNodePtr TryComputePushdown(const PlanNodePtr& project) {
  if (project->kind != PlanNodeKind::kProject) return nullptr;
  const PlanNodePtr& scan = project->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;

  std::string dict_col;
  std::vector<ProjectedColumn> pushed;
  for (const ProjectedColumn& pc : project->projections) {
    if (pc.expr->AsColumnRef() != nullptr) continue;  // pass-through
    std::vector<std::string> cols;
    pc.expr->CollectColumns(&cols);
    if (cols.empty()) continue;  // constant, stays above
    for (const auto& c : cols) {
      if (c != cols[0]) return nullptr;  // multi-column computation
    }
    if (!dict_col.empty() && cols[0] != dict_col) return nullptr;
    dict_col = cols[0];
    pushed.push_back(pc);
  }
  if (pushed.empty()) return nullptr;
  auto col_r = scan->table->ColumnByName(dict_col);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  if (col->compression() == CompressionKind::kNone) return nullptr;
  // Worth it only when the domain is materially smaller than the rows.
  if (!col->metadata().cardinality_known ||
      col->metadata().cardinality * 2 > scan->table->rows()) {
    return nullptr;
  }

  auto join = std::make_shared<PlanNode>();
  join->kind = PlanNodeKind::kInvisibleJoin;
  join->dict_column = dict_col;
  join->inner_projections = pushed;
  join->children.push_back(scan);

  // The projection above keeps its shape; pushed expressions become plain
  // references to the joined-in computed columns.
  auto new_project = std::make_shared<PlanNode>(*project);
  for (ProjectedColumn& pc : new_project->projections) {
    if (pc.expr->AsColumnRef() != nullptr) continue;
    for (const ProjectedColumn& p : pushed) {
      if (p.name == pc.name) {
        pc.expr = expr::Col(pc.name);
        break;
      }
    }
  }
  new_project->children = {join};
  return new_project;
}

/// Filtering move-around (Sect. 2.3.1): Filter over Project commutes when
/// every referenced column is a pass-through column reference.
PlanNodePtr TryPushFilterThroughProject(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& project = filter->children[0];
  if (project->kind != PlanNodeKind::kProject) return nullptr;
  std::vector<std::string> cols;
  filter->predicate->CollectColumns(&cols);
  std::map<std::string, std::string> rename;  // output name -> input name
  for (const std::string& c : cols) {
    bool mapped = false;
    for (const ProjectedColumn& pc : project->projections) {
      if (pc.name != c) continue;
      if (const std::string* ref = pc.expr->AsColumnRef()) {
        rename[c] = *ref;
        mapped = true;
      }
      break;
    }
    if (!mapped) return nullptr;
  }
  auto pushed = std::make_shared<PlanNode>();
  pushed->kind = PlanNodeKind::kFilter;
  pushed->predicate = expr::RenameColumns(filter->predicate, rename);
  pushed->children = {project->children[0]};
  auto new_project = std::make_shared<PlanNode>(*project);
  new_project->children = {pushed};
  return new_project;
}

using ColumnSet = std::set<std::string>;

void CollectExpr(const ExprPtr& e, ColumnSet* out) {
  if (e == nullptr) return;
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  out->insert(cols.begin(), cols.end());
}

/// Narrows an unrestricted scan to `required`. With the paged v2 format a
/// scan materializes every column it emits, so this is the rewrite that
/// keeps untouched columns cold on disk.
void PruneScan(const PlanNodePtr& scan, const ColumnSet* required) {
  if (required == nullptr) return;  // everything above needs everything
  if (!scan->columns.empty() || !scan->token_columns.empty()) return;
  const Table& t = *scan->table;
  std::vector<std::string> keep;
  for (size_t i = 0; i < t.num_columns(); ++i) {
    if (required->count(t.column(i).name()) != 0) {
      keep.push_back(t.column(i).name());
    }
  }
  if (keep.size() == t.num_columns() || t.num_columns() == 0) return;
  if (keep.empty()) {
    // COUNT(*)-style plans read no column, but the scan still drives row
    // counts; keep the physically cheapest one (answered from the
    // directory for cold columns — no data is faulted in to decide).
    size_t best = 0;
    for (size_t i = 1; i < t.num_columns(); ++i) {
      if (t.column(i).PhysicalSize() < t.column(best).PhysicalSize()) {
        best = i;
      }
    }
    keep.push_back(t.column(best).name());
  }
  scan->columns = std::move(keep);
}

/// Top-down required-column analysis. `required` is the set of columns the
/// ancestors read from this node's output; nullptr means "all of them"
/// (the node's output reaches the user, or an operator whose column flow
/// we don't model). Only scans are rewritten.
void PruneScans(const PlanNodePtr& node, const ColumnSet* required) {
  switch (node->kind) {
    case PlanNodeKind::kScan:
      PruneScan(node, required);
      return;
    case PlanNodeKind::kFilter: {
      if (required == nullptr) break;
      ColumnSet need = *required;
      CollectExpr(node->predicate, &need);
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kProject: {
      // Project evaluates every projection regardless of what is consumed
      // above, so the child must supply all their inputs.
      ColumnSet need;
      for (const ProjectedColumn& pc : node->projections) {
        CollectExpr(pc.expr, &need);
      }
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kAggregate: {
      ColumnSet need(node->agg.group_by.begin(), node->agg.group_by.end());
      for (const AggSpec& a : node->agg.aggs) {
        if (a.kind != AggKind::kCountStar) need.insert(a.input);
      }
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kSort:
    case PlanNodeKind::kTopN: {
      if (required == nullptr) break;
      ColumnSet need = *required;
      for (const SortKey& k : node->sort_keys) need.insert(k.column);
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kExchange:
    case PlanNodeKind::kLimit:
    case PlanNodeKind::kMaterialize:
      // Pure pass-throughs: same columns in as out.
      PruneScans(node->children[0], required);
      return;
    default:
      break;
  }
  // Joins, invisible joins, indexed scans, and pass-throughs with an
  // unknown requirement: column flow is operator-specific, so stay
  // conservative and require everything below.
  for (const auto& c : node->children) PruneScans(c, nullptr);
}

PlanNodePtr Rewrite(PlanNodePtr node, const StrategicOptions& options) {
  for (auto& c : node->children) c = Rewrite(c, options);
  // Bounded fixpoint: a successful rewrite may expose another (e.g. a
  // filter pushed through a projection lands on a scan and becomes an
  // invisible join).
  for (int round = 0; round < 4; ++round) {
    PlanNodePtr next;
    if (options.enable_simplification && next == nullptr) {
      next = SimplifyNode(node);
    }
    if (options.enable_filter_pushdown && next == nullptr) {
      next = TryPushFilterThroughProject(node);
    }
    if (options.enable_metadata_pruning && next == nullptr) {
      next = TryMetadataPrune(node);
    }
    if (options.enable_metadata_aggregates && next == nullptr) {
      next = TryMetadataAggregate(node);
    }
    if (options.enable_rank_join && next == nullptr) {
      next = TryRankJoin(node);
    }
    if (options.enable_run_aggregation && next == nullptr) {
      next = TryRunFoldAggregate(node);
    }
    if (options.enable_dict_grouping && next == nullptr) {
      next = TryDictCodeScan(node);
    }
    if (options.enable_topn && next == nullptr) {
      next = TryTopN(node);
    }
    if (options.enable_invisible_join && next == nullptr) {
      next = TryInvisibleJoin(node);
    }
    if (options.enable_invisible_join && next == nullptr) {
      next = TryComputePushdown(node);
    }
    if (next == nullptr) break;
    node = std::move(next);
    for (auto& c : node->children) c = Rewrite(c, options);
  }
  return node;
}

}  // namespace

Result<PlanNodePtr> StrategicOptimize(PlanNodePtr root,
                                      const StrategicOptions& options) {
  if (root == nullptr) {
    return {Status::InvalidArgument("empty plan")};
  }
  root = Rewrite(std::move(root), options);
  if (options.enable_projection_pruning) {
    PruneScans(root, /*required=*/nullptr);
  }
  if (options.enable_run_filters) {
    PushRunFilters(&root);
  }
  if (options.enable_sort_pruning) {
    PushSortRuns(&root);
  }
  if (options.enforce_order_preserving_exchange) {
    EnforceOrderedExchange(root, /*under_encoder=*/false);
  }
  if (!options.enable_dict_predicates) {
    DisableDictPredicates(root);
  }
  if (!options.enable_dict_grouping) {
    DisableDictGrouping(root);
  }
  if (!options.enable_dict_sort) {
    DisableDictSort(root);
  }
  if (!options.enable_sort_pruning) {
    DisableSortPruning(root);
  }
  return root;
}

namespace {

void CollectPredicateColumns(const ExprPtr& e, std::vector<std::string>* out) {
  if (const std::string* c = e->AsColumnRef()) {
    if (std::find(out->begin(), out->end(), *c) == out->end()) {
      out->push_back(*c);
    }
    return;
  }
  for (const ExprPtr& k : e->Children()) CollectPredicateColumns(k, out);
}

}  // namespace

SegmentPruneResult PruneScanSegments(const Table& table,
                                     const ExprPtr& predicate) {
  SegmentPruneResult out;
  if (predicate == nullptr) return out;

  std::vector<std::string> cols;
  CollectPredicateColumns(predicate, &cols);

  // A segment is skippable when the predicate, folded with that segment's
  // zone map substituted for its column's metadata, is provably false:
  // every row of the segment fails, whatever the other columns hold. Skip
  // verdicts from different columns union.
  std::vector<RowRange> skip;
  for (const std::string& name : cols) {
    auto c = table.ColumnByName(name);
    if (!c.ok()) continue;
    const std::vector<SegmentShape> shapes = c.value()->SegmentShapes();
    // Monolithic columns (one pseudo-segment) are TryMetadataPrune's job.
    if (shapes.size() <= 1) continue;
    for (const SegmentShape& s : shapes) {
      const MetaOverride ov{&name, &s.zone.meta};
      if (FoldAgainstMetadata(predicate, table, &ov) == Tri::kFalse) {
        ++out.segments_pruned;
        skip.push_back({s.start_row, s.start_row + s.rows});
      }
    }
  }
  skip = NormalizeRanges(std::move(skip));
  if (skip.empty()) return out;
  for (const RowRange& r : skip) out.rows_pruned += r.rows();
  out.ranges = ComplementRanges(skip, table.rows());
  if (out.ranges.empty()) {
    // Everything pruned: a degenerate visit list (an empty options.ranges
    // would mean "scan all").
    out.ranges.push_back({0, 0});
  }
  return out;
}

}  // namespace tde
