#include "src/plan/strategic.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/encoding/header.h"

namespace tde {

namespace {

/// True if `pred` references exactly one column, and that column is `name`.
bool PredicateOnlyOn(const ExprPtr& pred, const std::string& name) {
  std::vector<std::string> cols;
  pred->CollectColumns(&cols);
  if (cols.empty()) return false;
  return std::all_of(cols.begin(), cols.end(),
                     [&](const std::string& c) { return c == name; });
}

/// The single column a predicate references, if exactly one.
bool SingleColumn(const ExprPtr& pred, std::string* name) {
  std::vector<std::string> cols;
  pred->CollectColumns(&cols);
  if (cols.empty()) return false;
  for (const auto& c : cols) {
    if (c != cols[0]) return false;
  }
  *name = cols[0];
  return true;
}

/// Rule 1 (Sect. 4.1): Filter over Scan, predicate on one
/// dictionary-compressed column -> InvisibleJoin with the filter pushed to
/// the dictionary side.
PlanNodePtr TryInvisibleJoin(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;
  std::string col_name;
  if (!SingleColumn(filter->predicate, &col_name)) return nullptr;
  auto col_r = scan->table->ColumnByName(col_name);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  if (col->compression() == CompressionKind::kNone) return nullptr;
  // A dictionary table only pays when the domain is small.
  // encoding_type() answers from the directory for cold columns, so this
  // strategic decision never faults data in.
  if (!col->metadata().cardinality_known &&
      col->encoding_type() != EncodingType::kDictionary) {
    return nullptr;
  }

  auto join = std::make_shared<PlanNode>();
  join->kind = PlanNodeKind::kInvisibleJoin;
  join->dict_column = col_name;
  join->inner_predicate = filter->predicate;
  join->children.push_back(scan);
  return join;
}

/// Rule 2 (Sect. 4.2): Aggregate(group by c) over Filter(pred on c) over
/// Scan, with c run-length encoded -> IndexedScan + aggregation. Whether
/// the index is additionally sorted for ordered aggregation is a tactical
/// decision made at execution time from the actual run lengths.
PlanNodePtr TryRankJoin(const PlanNodePtr& agg) {
  if (agg->kind != PlanNodeKind::kAggregate) return nullptr;
  if (agg->agg.group_by.size() != 1) return nullptr;
  const PlanNodePtr& filter = agg->children[0];
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& scan = filter->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;
  const std::string& key = agg->agg.group_by[0];
  if (!PredicateOnlyOn(filter->predicate, key)) return nullptr;
  auto col_r = scan->table->ColumnByName(key);
  if (!col_r.ok()) return nullptr;
  if (col_r.value()->encoding_type() != EncodingType::kRunLength) {
    return nullptr;
  }

  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = scan->table;
  iscan->index_column = key;
  iscan->index_predicate = filter->predicate;
  for (const AggSpec& a : agg->agg.aggs) {
    if (a.kind != AggKind::kCountStar && a.input != key) {
      iscan->payload.push_back(a.input);
    }
  }
  // Deduplicate payload names.
  std::sort(iscan->payload.begin(), iscan->payload.end());
  iscan->payload.erase(
      std::unique(iscan->payload.begin(), iscan->payload.end()),
      iscan->payload.end());

  auto new_agg = std::make_shared<PlanNode>(*agg);
  new_agg->children = {iscan};
  return new_agg;
}

/// Rule 3 (Sect. 4.3): encodings are sensitive to data order, so any
/// exchange feeding an encoding sink must use order-preserving routing.
void EnforceOrderedExchange(const PlanNodePtr& node, bool under_encoder) {
  if (node->kind == PlanNodeKind::kMaterialize) under_encoder = true;
  if (node->kind == PlanNodeKind::kExchange && under_encoder) {
    node->order_preserving = true;
  }
  for (const auto& c : node->children) {
    EnforceOrderedExchange(c, under_encoder);
  }
}

/// Expression simplification (Sect. 2.3.1) over a node's expressions.
/// Returns a replacement node when the node itself dissolves (a filter
/// whose predicate folded to TRUE).
PlanNodePtr SimplifyNode(const PlanNodePtr& node) {
  if (node->predicate != nullptr) {
    node->predicate = expr::Simplify(node->predicate);
  }
  if (node->inner_predicate != nullptr) {
    node->inner_predicate = expr::Simplify(node->inner_predicate);
  }
  if (node->index_predicate != nullptr) {
    node->index_predicate = expr::Simplify(node->index_predicate);
  }
  for (auto& pc : node->projections) pc.expr = expr::Simplify(pc.expr);
  for (auto& pc : node->inner_projections) pc.expr = expr::Simplify(pc.expr);
  if (node->kind == PlanNodeKind::kFilter) {
    TypeId t;
    Lane v;
    if (node->predicate->AsLiteral(&t, &v) && t == TypeId::kBool && v == 1) {
      return node->children[0];  // WHERE TRUE dissolves
    }
  }
  return nullptr;
}

/// Computation move-around (Sect. 2.3.1 / 4.1.2): a Project over a Scan
/// whose computed expressions all read one dictionary-compressed column
/// becomes an InvisibleJoin with the computations pushed to the dictionary
/// side — the Sect. 4.1.2 scenario, where EXTENSION(url) runs once per
/// distinct URL instead of once per row.
PlanNodePtr TryComputePushdown(const PlanNodePtr& project) {
  if (project->kind != PlanNodeKind::kProject) return nullptr;
  const PlanNodePtr& scan = project->children[0];
  if (scan->kind != PlanNodeKind::kScan) return nullptr;

  std::string dict_col;
  std::vector<ProjectedColumn> pushed;
  for (const ProjectedColumn& pc : project->projections) {
    if (pc.expr->AsColumnRef() != nullptr) continue;  // pass-through
    std::vector<std::string> cols;
    pc.expr->CollectColumns(&cols);
    if (cols.empty()) continue;  // constant, stays above
    for (const auto& c : cols) {
      if (c != cols[0]) return nullptr;  // multi-column computation
    }
    if (!dict_col.empty() && cols[0] != dict_col) return nullptr;
    dict_col = cols[0];
    pushed.push_back(pc);
  }
  if (pushed.empty()) return nullptr;
  auto col_r = scan->table->ColumnByName(dict_col);
  if (!col_r.ok()) return nullptr;
  const auto& col = col_r.value();
  if (col->compression() == CompressionKind::kNone) return nullptr;
  // Worth it only when the domain is materially smaller than the rows.
  if (!col->metadata().cardinality_known ||
      col->metadata().cardinality * 2 > scan->table->rows()) {
    return nullptr;
  }

  auto join = std::make_shared<PlanNode>();
  join->kind = PlanNodeKind::kInvisibleJoin;
  join->dict_column = dict_col;
  join->inner_projections = pushed;
  join->children.push_back(scan);

  // The projection above keeps its shape; pushed expressions become plain
  // references to the joined-in computed columns.
  auto new_project = std::make_shared<PlanNode>(*project);
  for (ProjectedColumn& pc : new_project->projections) {
    if (pc.expr->AsColumnRef() != nullptr) continue;
    for (const ProjectedColumn& p : pushed) {
      if (p.name == pc.name) {
        pc.expr = expr::Col(pc.name);
        break;
      }
    }
  }
  new_project->children = {join};
  return new_project;
}

/// Filtering move-around (Sect. 2.3.1): Filter over Project commutes when
/// every referenced column is a pass-through column reference.
PlanNodePtr TryPushFilterThroughProject(const PlanNodePtr& filter) {
  if (filter->kind != PlanNodeKind::kFilter) return nullptr;
  const PlanNodePtr& project = filter->children[0];
  if (project->kind != PlanNodeKind::kProject) return nullptr;
  std::vector<std::string> cols;
  filter->predicate->CollectColumns(&cols);
  std::map<std::string, std::string> rename;  // output name -> input name
  for (const std::string& c : cols) {
    bool mapped = false;
    for (const ProjectedColumn& pc : project->projections) {
      if (pc.name != c) continue;
      if (const std::string* ref = pc.expr->AsColumnRef()) {
        rename[c] = *ref;
        mapped = true;
      }
      break;
    }
    if (!mapped) return nullptr;
  }
  auto pushed = std::make_shared<PlanNode>();
  pushed->kind = PlanNodeKind::kFilter;
  pushed->predicate = expr::RenameColumns(filter->predicate, rename);
  pushed->children = {project->children[0]};
  auto new_project = std::make_shared<PlanNode>(*project);
  new_project->children = {pushed};
  return new_project;
}

using ColumnSet = std::set<std::string>;

void CollectExpr(const ExprPtr& e, ColumnSet* out) {
  if (e == nullptr) return;
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  out->insert(cols.begin(), cols.end());
}

/// Narrows an unrestricted scan to `required`. With the paged v2 format a
/// scan materializes every column it emits, so this is the rewrite that
/// keeps untouched columns cold on disk.
void PruneScan(const PlanNodePtr& scan, const ColumnSet* required) {
  if (required == nullptr) return;  // everything above needs everything
  if (!scan->columns.empty() || !scan->token_columns.empty()) return;
  const Table& t = *scan->table;
  std::vector<std::string> keep;
  for (size_t i = 0; i < t.num_columns(); ++i) {
    if (required->count(t.column(i).name()) != 0) {
      keep.push_back(t.column(i).name());
    }
  }
  if (keep.size() == t.num_columns() || t.num_columns() == 0) return;
  if (keep.empty()) {
    // COUNT(*)-style plans read no column, but the scan still drives row
    // counts; keep the physically cheapest one (answered from the
    // directory for cold columns — no data is faulted in to decide).
    size_t best = 0;
    for (size_t i = 1; i < t.num_columns(); ++i) {
      if (t.column(i).PhysicalSize() < t.column(best).PhysicalSize()) {
        best = i;
      }
    }
    keep.push_back(t.column(best).name());
  }
  scan->columns = std::move(keep);
}

/// Top-down required-column analysis. `required` is the set of columns the
/// ancestors read from this node's output; nullptr means "all of them"
/// (the node's output reaches the user, or an operator whose column flow
/// we don't model). Only scans are rewritten.
void PruneScans(const PlanNodePtr& node, const ColumnSet* required) {
  switch (node->kind) {
    case PlanNodeKind::kScan:
      PruneScan(node, required);
      return;
    case PlanNodeKind::kFilter: {
      if (required == nullptr) break;
      ColumnSet need = *required;
      CollectExpr(node->predicate, &need);
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kProject: {
      // Project evaluates every projection regardless of what is consumed
      // above, so the child must supply all their inputs.
      ColumnSet need;
      for (const ProjectedColumn& pc : node->projections) {
        CollectExpr(pc.expr, &need);
      }
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kAggregate: {
      ColumnSet need(node->agg.group_by.begin(), node->agg.group_by.end());
      for (const AggSpec& a : node->agg.aggs) {
        if (a.kind != AggKind::kCountStar) need.insert(a.input);
      }
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kSort: {
      if (required == nullptr) break;
      ColumnSet need = *required;
      for (const SortKey& k : node->sort_keys) need.insert(k.column);
      PruneScans(node->children[0], &need);
      return;
    }
    case PlanNodeKind::kExchange:
    case PlanNodeKind::kLimit:
    case PlanNodeKind::kMaterialize:
      // Pure pass-throughs: same columns in as out.
      PruneScans(node->children[0], required);
      return;
    default:
      break;
  }
  // Joins, invisible joins, indexed scans, and pass-throughs with an
  // unknown requirement: column flow is operator-specific, so stay
  // conservative and require everything below.
  for (const auto& c : node->children) PruneScans(c, nullptr);
}

PlanNodePtr Rewrite(PlanNodePtr node, const StrategicOptions& options) {
  for (auto& c : node->children) c = Rewrite(c, options);
  // Bounded fixpoint: a successful rewrite may expose another (e.g. a
  // filter pushed through a projection lands on a scan and becomes an
  // invisible join).
  for (int round = 0; round < 4; ++round) {
    PlanNodePtr next;
    if (options.enable_simplification && next == nullptr) {
      next = SimplifyNode(node);
    }
    if (options.enable_filter_pushdown && next == nullptr) {
      next = TryPushFilterThroughProject(node);
    }
    if (options.enable_rank_join && next == nullptr) {
      next = TryRankJoin(node);
    }
    if (options.enable_invisible_join && next == nullptr) {
      next = TryInvisibleJoin(node);
    }
    if (options.enable_invisible_join && next == nullptr) {
      next = TryComputePushdown(node);
    }
    if (next == nullptr) break;
    node = std::move(next);
    for (auto& c : node->children) c = Rewrite(c, options);
  }
  return node;
}

}  // namespace

Result<PlanNodePtr> StrategicOptimize(PlanNodePtr root,
                                      const StrategicOptions& options) {
  if (root == nullptr) {
    return {Status::InvalidArgument("empty plan")};
  }
  root = Rewrite(std::move(root), options);
  if (options.enable_projection_pruning) {
    PruneScans(root, /*required=*/nullptr);
  }
  if (options.enforce_order_preserving_exchange) {
    EnforceOrderedExchange(root, /*under_encoder=*/false);
  }
  return root;
}

}  // namespace tde
