#ifndef TDE_PLAN_STRATEGIC_H_
#define TDE_PLAN_STRATEGIC_H_

#include <vector>

#include "src/plan/plan.h"
#include "src/storage/segment/segment.h"

namespace tde {

struct StrategicOptions {
  /// Rewrite filters over dictionary-compressed columns into invisible
  /// joins with predicate push-down (Sect. 4.1).
  bool enable_invisible_join = true;
  /// Rewrite filter+aggregate over run-length columns into IndexTable rank
  /// joins (Sect. 4.2).
  bool enable_rank_join = true;
  /// Force order-preserving routing on exchanges whose output is encoded
  /// downstream (Sect. 4.3).
  bool enforce_order_preserving_exchange = true;
  /// Expression simplification: constant folding and boolean identities
  /// over every predicate and projection (Sect. 2.3.1). Filters whose
  /// predicate folds to TRUE are removed.
  bool enable_simplification = true;
  /// Filtering move-around (Sect. 2.3.1): push filters through projections
  /// when the predicate only touches pass-through columns, so they can
  /// reach scans and become decompression-join rewrites.
  bool enable_filter_pushdown = true;
  /// Narrow unrestricted scans to the columns the plan above actually
  /// reads. With the paged v2 format this is what makes a single-column
  /// query materialize a single column: untouched columns stay cold.
  bool enable_projection_pruning = true;
  /// Metadata pruning (Sect. 3.4.2 applied to filtering): fold predicates
  /// against per-column min/max/nullability. A provably-false filter over
  /// a scan becomes LIMIT 0 (the scan never opens, so cold columns stay on
  /// disk); a provably-true one dissolves. All facts come from the
  /// directory — deciding never faults data in.
  bool enable_metadata_pruning = true;
  /// Run-level predicate evaluation (Sect. 4.2 beyond aggregation): a
  /// single-column filter over a scan whose column is run-length encoded
  /// becomes an IndexedScan that evaluates the predicate once per run and
  /// emits or skips whole runs, preserving row order.
  bool enable_run_filters = true;
  /// Dictionary-code predicates: let the tactical lowering translate
  /// single-string-column boolean predicates into token ranges/sets
  /// evaluated on integer codes (no per-row heap lookups or collation).
  bool enable_dict_predicates = true;
  /// Dictionary-code grouping (Sect. 4 applied to aggregation): string
  /// group-by keys are grouped on dense per-heap codes via a translation
  /// cache and one key string per *group* materializes at finalize time,
  /// instead of one heap lookup per row.
  bool enable_dict_grouping = true;
  /// Run-level aggregate folding: Aggregate-over-Scan whose aggregates all
  /// read one run-length encoded column (or are COUNT(*)) becomes an
  /// aggregation over the IndexTable that folds each run in O(1)
  /// (`sum += value * count`).
  bool enable_run_aggregation = true;
  /// Metadata aggregate short-circuits: whole-table COUNT(*) / COUNT /
  /// MIN / MAX / COUNTD answered from directory facts at strategic time.
  /// The scan is never built, so cold columns stay on disk.
  bool enable_metadata_aggregates = true;
  /// Limit-over-Sort fusion: ORDER BY ... LIMIT k keeps the k best rows in
  /// a bounded heap (O(n log k), O(k) materialized rows) instead of fully
  /// sorting and then discarding. Ties and output order match the full
  /// sort exactly.
  bool enable_topn = true;
  /// Compressed-domain sort keys: string ORDER BY columns compare as
  /// integers — raw tokens when the heap is sorted, per-heap collation
  /// ranks otherwise — instead of running the locale collation per
  /// comparison.
  bool enable_dict_sort = true;
  /// Run/segment awareness for ordering: a single-key ascending ORDER BY
  /// on an uncompressed run-length column becomes ordered run retrieval
  /// (sorting runs, not rows), and a Top-N directly over a segmented scan
  /// skips whole segments whose zone map cannot beat the heap's worst
  /// kept row.
  bool enable_sort_pruning = true;
};

/// The strategic (compile-time) optimizer: rule-based rewrites over the
/// logical plan, driven by storage-level properties the decompression-join
/// model exposes to it (Sect. 4). The arrangement of operators is decided
/// here; their implementations are chosen tactically at run time.
Result<PlanNodePtr> StrategicOptimize(PlanNodePtr root,
                                      const StrategicOptions& options = {});

/// Outcome of folding a filter predicate against per-segment zone maps.
struct SegmentPruneResult {
  /// Row ranges the scan must still visit. Empty when nothing was pruned
  /// (scan everything); the degenerate {0,0} when every segment was
  /// pruned.
  std::vector<RowRange> ranges;
  /// Zone-map verdicts that skipped a segment (counted per predicate
  /// column — the EXPLAIN ANALYZE `filter.segments_pruned` figure).
  uint64_t segments_pruned = 0;
  /// Rows inside the skipped ranges.
  uint64_t rows_pruned = 0;
};

/// Segment pruning (the tentpole of zone-map filtering): folds `predicate`
/// once per segment of every segmented column it references, substituting
/// the segment's zone map for the column's metadata. Segments whose fold is
/// provably false are dropped from the scan's visit list — their blobs
/// never fault in on the lazy v3 path. Consults directory facts only.
SegmentPruneResult PruneScanSegments(const Table& table,
                                     const ExprPtr& predicate);

}  // namespace tde

#endif  // TDE_PLAN_STRATEGIC_H_
