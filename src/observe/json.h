#ifndef TDE_OBSERVE_JSON_H_
#define TDE_OBSERVE_JSON_H_

#include <string>
#include <string_view>

namespace tde {
namespace observe {

/// Appends `s` to `out` escaped for embedding inside a JSON string literal
/// (no surrounding quotes): quote, backslash, and every control character
/// below 0x20 (including \b \f \r, which ad-hoc escapers tend to forget).
/// Non-ASCII bytes pass through untouched — the engine's strings are UTF-8
/// and JSON permits raw UTF-8.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Returns the escaped form of `s` (convenience over AppendJsonEscaped).
std::string JsonEscape(std::string_view s);

/// Appends a complete JSON string literal: quote, escaped bytes, quote.
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_JSON_H_
