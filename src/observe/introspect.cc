#include "src/observe/introspect.h"

#include "src/observe/json.h"
#include "src/storage/column.h"
#include "src/storage/database_file.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/table.h"

namespace tde {
namespace observe {

namespace {

const char* CompressionName(CompressionKind k) {
  switch (k) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kHeap:
      return "heap";
    case CompressionKind::kArrayDict:
      return "array-dict";
  }
  return "unknown";
}

ColumnReport ReportColumn(const std::string& table_name, const Column& col) {
  ColumnReport r;
  r.table = table_name;
  r.column = col.name();
  r.type = TypeName(col.type());
  r.encoding = EncodingName(col.encoding_type());
  r.compression = CompressionName(col.compression());
  // Residency is probed before PinIfResident below: our own transient pin
  // must not make every warm column report as pinned.
  r.residency = ResidencyName(col.residency_state());
  r.rows = col.rows();
  r.compressed_bytes = col.PhysicalSize();
  r.logical_bytes = col.LogicalSize();
  if (col.segmented_storage()) r.segments = col.SegmentShapes();

  auto pin = col.PinIfResident();
  const EncodedStream* stream =
      pin != nullptr ? pin->stream.get() : (col.cold() ? nullptr : col.data());
  const StringHeap* heap = pin != nullptr ? pin->heap.get() : col.heap();
  const ArrayDictionary* dict =
      pin != nullptr ? pin->dict.get() : col.array_dict();

  if (stream != nullptr) {
    r.bits = stream->bits();
    std::vector<RleRun> runs;
    if (stream->GetRuns(&runs).ok()) {
      r.runs = static_cast<int64_t>(runs.size());
    }
    if (dict != nullptr) {
      r.dict_entries = static_cast<int64_t>(dict->values.size());
    } else if (stream->type() == EncodingType::kDictionary) {
      r.dict_entries = static_cast<int64_t>(stream->CodeEntries().size());
    } else {
      r.dict_entries = 0;
    }
    r.heap_entries = heap != nullptr ? heap->entry_count() : 0;
    return r;
  }

  // Unloaded cold column: answer from directory facts only. The encoding
  // dictionary's entry count lives inside the stream blob, so it is
  // unknown (-1) unless the directory records a compression dictionary.
  const pager::ColdSource* src = col.cold_source();
  if (src != nullptr) {
    r.heap_entries = src->heap_entries;
    if (src->has_dict) {
      r.dict_entries = static_cast<int64_t>(src->dict_entries);
    } else {
      r.dict_entries =
          src->encoding == EncodingType::kDictionary ? -1 : 0;
    }
  }
  return r;
}

}  // namespace

std::vector<ColumnReport> BuildColumnReports(const Database& db) {
  std::vector<ColumnReport> out;
  for (const auto& table : db.tables()) {
    for (size_t i = 0; i < table->num_columns(); ++i) {
      out.push_back(ReportColumn(table->name(), table->column(i)));
    }
  }
  return out;
}

CacheReport BuildCacheReport(const pager::ColumnCache* cache) {
  CacheReport r;
  if (cache == nullptr) return r;
  r.present = true;
  r.budget_bytes = cache->budget_bytes();
  r.bytes_resident = cache->bytes_resident();
  int64_t pos = 0;
  for (const auto& e : cache->EntriesSnapshot()) {
    CacheEntryReport entry;
    entry.lru_position = pos++;
    if (const pager::ColdSource* src = e.column->cold_source()) {
      entry.table = src->table_name;
      entry.column = src->column_name;
    }
    entry.bytes = e.bytes;
    entry.pinned = e.column->residency_state() == ColumnResidency::kPinned;
    r.entries.push_back(std::move(entry));
  }
  return r;
}

std::string StorageReportJson(const Database& db,
                              const pager::ColumnCache* cache) {
  std::string out = "{\"columns\":[";
  bool first = true;
  for (const ColumnReport& c : BuildColumnReports(db)) {
    if (!first) out += ",";
    first = false;
    out += "{\"table\":";
    AppendJsonString(&out, c.table);
    out += ",\"column\":";
    AppendJsonString(&out, c.column);
    out += ",\"type\":\"" + std::string(c.type) + "\",\"encoding\":\"" +
           c.encoding + "\",\"compression\":\"" + c.compression +
           "\",\"residency\":\"" + c.residency +
           "\",\"rows\":" + std::to_string(c.rows) +
           ",\"bits\":" + std::to_string(c.bits) +
           ",\"runs\":" + std::to_string(c.runs) +
           ",\"dict_entries\":" + std::to_string(c.dict_entries) +
           ",\"heap_entries\":" + std::to_string(c.heap_entries) +
           ",\"compressed_bytes\":" + std::to_string(c.compressed_bytes) +
           ",\"logical_bytes\":" + std::to_string(c.logical_bytes) +
           ",\"ratio_ppt\":" + std::to_string(c.ratio_ppt());
    if (!c.segments.empty()) {
      out += ",\"segments\":[";
      bool first_s = true;
      for (const SegmentShape& s : c.segments) {
        if (!first_s) out += ",";
        first_s = false;
        out += "{\"start_row\":" + std::to_string(s.start_row) +
               ",\"rows\":" + std::to_string(s.rows) + ",\"encoding\":\"" +
               EncodingName(s.encoding) +
               "\",\"bits\":" + std::to_string(s.bits) +
               ",\"physical_bytes\":" + std::to_string(s.physical_bytes) +
               ",\"resident\":" + (s.resident ? "true" : "false") +
               ",\"open_tail\":" + (s.open_tail ? "true" : "false");
        const ColumnMetadata& z = s.zone.meta;
        if (z.min_max_known) {
          out += ",\"min\":" + std::to_string(z.min_value) +
                 ",\"max\":" + std::to_string(z.max_value);
        }
        if (z.cardinality_known) {
          out += ",\"cardinality\":" + std::to_string(z.cardinality);
        }
        if (s.zone.null_count >= 0) {
          out += ",\"null_count\":" + std::to_string(s.zone.null_count);
        }
        out += ",\"sorted\":" + std::string(z.sorted ? "true" : "false") +
               "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "],\"cache\":";
  const CacheReport cache_r = BuildCacheReport(cache);
  if (!cache_r.present) {
    out += "null}";
    return out;
  }
  out += "{\"budget_bytes\":" + std::to_string(cache_r.budget_bytes) +
         ",\"bytes_resident\":" + std::to_string(cache_r.bytes_resident) +
         ",\"entries\":[";
  bool first_e = true;
  for (const CacheEntryReport& e : cache_r.entries) {
    if (!first_e) out += ",";
    first_e = false;
    out += "{\"lru_position\":" + std::to_string(e.lru_position) +
           ",\"table\":";
    AppendJsonString(&out, e.table);
    out += ",\"column\":";
    AppendJsonString(&out, e.column);
    out += ",\"bytes\":" + std::to_string(e.bytes) +
           ",\"pinned\":" + (e.pinned ? "true" : "false") + "}";
  }
  out += "]}}";
  return out;
}

}  // namespace observe
}  // namespace tde
