#ifndef TDE_OBSERVE_INTROSPECT_H_
#define TDE_OBSERVE_INTROSPECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/segment/segment.h"

namespace tde {

class Database;

namespace pager {
class ColumnCache;
}  // namespace pager

namespace observe {

/// One stored column's physical shape, as reported by the tde_columns
/// virtual table and StorageReportJson. Built from directory facts and
/// already-resident streams only: introspection never faults a cold
/// column's data in (fields that would require it are "unknown").
struct ColumnReport {
  std::string table;
  std::string column;
  const char* type = "";         // logical type ("integer", "string", ...)
  const char* encoding = "";     // encoding algorithm (EncodingName)
  const char* compression = "";  // "none" / "heap" / "array-dict"
  const char* residency = "";    // "hot" / "cold" / "warm" / "pinned"
  uint64_t rows = 0;
  /// Packed bit width of the main stream; -1 when not resident.
  int64_t bits = -1;
  /// Runs in the main stream (derived for non-RLE encodings); -1 when not
  /// resident.
  int64_t runs = -1;
  /// Entries of the attached dictionary: the compression array dictionary
  /// if present, otherwise the encoding dictionary's entry table; -1 when
  /// the column is not resident and the directory records no dictionary.
  int64_t dict_entries = 0;
  uint64_t heap_entries = 0;
  /// Stored bytes (stream + heap + dictionary) vs un-encoded bytes.
  uint64_t compressed_bytes = 0;
  uint64_t logical_bytes = 0;

  /// Per-segment shapes of a segmented column (position, encoding, zone
  /// map, residency), in row order. Empty for monolithic columns. From
  /// directory facts — populating this never faults data in.
  std::vector<SegmentShape> segments;

  /// compressed/logical in parts-per-thousand (0 when logical is 0).
  int64_t ratio_ppt() const {
    return logical_bytes == 0
               ? 0
               : static_cast<int64_t>(compressed_bytes * 1000 /
                                      logical_bytes);
  }
};

/// One row per stored column across every table of `db`, in table order.
/// Skips nothing: virtual tables are not in `db` and never appear here.
std::vector<ColumnReport> BuildColumnReports(const Database& db);

/// One resident entry of the column cache, LRU order (MRU first).
struct CacheEntryReport {
  int64_t lru_position = 0;  // 0 = most recently used
  std::string table;
  std::string column;
  uint64_t bytes = 0;  // compressed bytes charged against the budget
  bool pinned = false;
};

/// Residency snapshot of a column cache (empty report for null `cache`,
/// i.e. an engine without a lazily opened v2 database).
struct CacheReport {
  bool present = false;
  uint64_t budget_bytes = 0;
  uint64_t bytes_resident = 0;
  std::vector<CacheEntryReport> entries;
};

CacheReport BuildCacheReport(const pager::ColumnCache* cache);

/// The whole storage picture as one JSON document:
/// {"columns":[...],"cache":{...}}.
std::string StorageReportJson(const Database& db,
                              const pager::ColumnCache* cache);

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_INTROSPECT_H_
