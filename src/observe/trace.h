#ifndef TDE_OBSERVE_TRACE_H_
#define TDE_OBSERVE_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tde {
namespace observe {

/// One completed span, in the shape Chrome's about://tracing consumes
/// (a "complete" event, ph == "X").
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;  // microseconds since the recorder's epoch
  uint64_t dur_us = 0;
  uint64_t tid = 0;
};

/// A process-wide span sink. Off by default: TraceSpan construction is a
/// single relaxed load when disabled, so leaving spans in hot paths is
/// free. When enabled, finished spans are appended under a mutex — spans
/// end at operator/phase granularity, not per row, so contention is not a
/// concern.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool v) { enabled_.store(v, std::memory_order_relaxed); }

  void Record(TraceEvent event);
  void Clear();
  size_t size() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Load the file at
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// Microseconds since the recorder's epoch (steady clock).
  uint64_t NowMicros() const;

 private:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records [construction, destruction) into the global recorder
/// under `name`. No-op (and no clock read) while tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "engine");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span early (idempotent).
  void End();

 private:
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_TRACE_H_
