#include "src/observe/journal.h"

#include <time.h>

#include <cstdio>
#include <cstdlib>

#include "src/observe/json.h"
#include "src/observe/metrics.h"

namespace tde {
namespace observe {

namespace {

struct QueryCounterNames {
  const char* metric;
  const char* column;
};

constexpr QueryCounterNames kQueryCounterNames[kNumQueryCounters] = {
    {"scan.bytes_compressed", "bytes_scanned_compressed"},
    {"scan.bytes_decoded", "bytes_scanned_decoded"},
    {"pager.hits", "cache_hits"},
    {"pager.misses", "cache_misses"},
    {"pager.bytes_read", "cache_bytes_read"},
    {"filter.rows_pruned", "rows_pruned"},
    {"filter.runs_skipped", "runs_skipped"},
    {"filter.segments_pruned", "segments_pruned"},
    {"filter.dict_rewrites", "dict_rewrites"},
    {"agg.runs_folded", "runs_folded"},
    {"agg.groups_late_materialized", "groups_late_materialized"},
    {"agg.metadata_answers", "metadata_answers"},
    {"sort.rows_materialized", "rows_materialized"},
    {"sort.topn_segments_skipped", "topn_segments_skipped"},
    {"sort.dict_key_sorts", "dict_key_sorts"},
    {"sort.runs_sorted", "runs_sorted"},
};

/// Registry handles looked up once: QueryCount stays two relaxed adds.
Counter* GlobalQueryCounterHandle(QueryCounter c) {
  static Counter* handles[kNumQueryCounters] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kNumQueryCounters; ++i) {
      handles[i] = MetricsRegistry::Global().GetCounter(
          kQueryCounterNames[i].metric);
    }
  });
  return handles[static_cast<int>(c)];
}

thread_local StatsScope* t_current_scope = nullptr;
thread_local std::string_view t_query_text;
thread_local uint64_t t_last_journal_id = 0;

std::atomic<int64_t>& SlowThresholdMs() {
  static std::atomic<int64_t> ms = [] {
    const char* e = std::getenv("TDE_SLOW_QUERY_MS");
    return e != nullptr && e[0] != '\0' ? std::atoll(e) : int64_t{-1};
  }();
  return ms;
}

}  // namespace

const char* QueryCounterMetricName(QueryCounter c) {
  return kQueryCounterNames[static_cast<int>(c)].metric;
}

const char* QueryCounterColumnName(QueryCounter c) {
  return kQueryCounterNames[static_cast<int>(c)].column;
}

void QueryCount(QueryCounter c, uint64_t n) {
  if (n == 0 || !StatsEnabled()) return;
  GlobalQueryCounterHandle(c)->Add(n);
  if (StatsScope* s = t_current_scope) s->Add(c, n);
}

uint64_t ThreadCpuNs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

StatsScope::StatsScope() : parent_(t_current_scope) {
  own_cpu0_ = ThreadCpuNs();
  t_current_scope = this;
}

StatsScope::~StatsScope() { t_current_scope = parent_; }

uint64_t StatsScope::CpuNs() const {
  return (ThreadCpuNs() - own_cpu0_) +
         worker_cpu_ns_.load(std::memory_order_relaxed);
}

StatsScope* StatsScope::Current() { return t_current_scope; }

StatsScope::Bind::Bind(StatsScope* scope)
    : scope_(scope), prev_(t_current_scope) {
  if (scope_ == nullptr) return;
  cpu0_ = ThreadCpuNs();
  t_current_scope = scope_;
}

StatsScope::Bind::~Bind() {
  if (scope_ == nullptr) return;
  scope_->worker_cpu_ns_.fetch_add(ThreadCpuNs() - cpu0_,
                                   std::memory_order_relaxed);
  t_current_scope = prev_;
}

std::string QueryJournalEntry::ToJson() const {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"sql\":";
  AppendJsonString(&out, sql);
  char fp[24];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(plan_fingerprint));
  out += ",\"fingerprint\":\"";
  out += fp;
  out += "\",\"wall_us\":" + std::to_string(wall_ns / 1000) +
         ",\"cpu_us\":" + std::to_string(cpu_ns / 1000) +
         ",\"rows\":" + std::to_string(rows_out) +
         ",\"ok\":" + (ok ? "true" : "false");
  for (int i = 0; i < kNumQueryCounters; ++i) {
    out += ",\"";
    out += kQueryCounterNames[i].column;
    out += "\":" + std::to_string(counters[static_cast<size_t>(i)]);
  }
  out += "}";
  return out;
}

QueryJournal& QueryJournal::Global() {
  static QueryJournal* j = new QueryJournal();
  return *j;
}

QueryJournal::QueryJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t QueryJournal::NextId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void QueryJournal::Record(QueryJournalEntry entry) {
  const int64_t slow_ms = SlowQueryThresholdMs();
  if (slow_ms >= 0 && entry.wall_ns / 1000000 >=
                          static_cast<uint64_t>(slow_ms)) {
    // Full counter breakdown on one line: grep-able, and the journal entry
    // itself may have been evicted by the time someone looks.
    std::string line =
        "[tde] slow query id=" + std::to_string(entry.id) +
        " wall_ms=" + std::to_string(entry.wall_ns / 1000000) +
        " cpu_ms=" + std::to_string(entry.cpu_ns / 1000000) +
        " rows=" + std::to_string(entry.rows_out);
    for (int i = 0; i < kNumQueryCounters; ++i) {
      if (entry.counters[static_cast<size_t>(i)] == 0) continue;
      line += std::string(" ") + kQueryCounterNames[i].column + "=" +
              std::to_string(entry.counters[static_cast<size_t>(i)]);
    }
    if (!entry.sql.empty()) line += " sql=" + entry.sql;
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<QueryJournalEntry> QueryJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::string QueryJournal::ToNdjson() const {
  std::string out;
  for (const QueryJournalEntry& e : Snapshot()) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

void QueryJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t QueryJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void QueryJournal::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n == 0 ? 1 : n;
  while (entries_.size() > capacity_) entries_.pop_front();
}

int64_t QueryJournal::SlowQueryThresholdMs() {
  return SlowThresholdMs().load(std::memory_order_relaxed);
}

void QueryJournal::SetSlowQueryThresholdMs(int64_t ms) {
  SlowThresholdMs().store(ms, std::memory_order_relaxed);
}

ScopedQueryText::ScopedQueryText(std::string_view sql) : prev_(t_query_text) {
  t_query_text = sql;
}

ScopedQueryText::~ScopedQueryText() { t_query_text = prev_; }

std::string_view CurrentQueryText() { return t_query_text; }

uint64_t LastJournalIdOnThread() { return t_last_journal_id; }

void SetLastJournalIdOnThread(uint64_t id) { t_last_journal_id = id; }

}  // namespace observe
}  // namespace tde
