#ifndef TDE_OBSERVE_QUERY_STATS_H_
#define TDE_OBSERVE_QUERY_STATS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tde {
namespace observe {

/// Per-operator runtime observations, collected by the execution layer's
/// instrumentation wrapper. Mirrors the operator tree: one node per
/// lowered operator, children in plan order. Times are inclusive of the
/// subtree (each wrapper surrounds its operator's Open/Next/Close, and the
/// operator drives its children from inside those calls).
struct OperatorStats {
  std::string name;      // e.g. "TableScan(lineitem)", "Filter"
  uint64_t rows = 0;     // rows emitted
  uint64_t blocks = 0;   // non-empty blocks emitted
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;  // total across all Next() calls
  uint64_t close_ns = 0;
  /// Operator-specific observations exported at Close (e.g. Exchange's
  /// per-worker queue-wait and emit counts), as (label, value) pairs.
  std::vector<std::pair<std::string, uint64_t>> extras;
  std::vector<std::shared_ptr<OperatorStats>> children;

  uint64_t total_ns() const { return open_ns + next_ns + close_ns; }
  /// Subtree time spent in this operator alone.
  uint64_t self_ns() const;
};

/// The runtime profile of one executed query: the operator stats tree plus
/// the tactical notes recorded while lowering. Attached to QueryResult by
/// the executor; rendered by EXPLAIN ANALYZE.
struct QueryStats {
  std::shared_ptr<OperatorStats> root;
  uint64_t total_ns = 0;
  std::vector<std::string> notes;
  /// Id of this query's entry in the global QueryJournal (0 when the
  /// journal did not record it). Printed by EXPLAIN ANALYZE so the plan
  /// can be joined against tde_queries after the fact.
  uint64_t journal_id = 0;

  /// The operator tree annotated with rows/blocks/ms per node, one node
  /// per line, followed by the tactical notes:
  ///   Filter  rows=1204 blocks=2 time=0.41ms (self 0.12ms)
  ///     TableScan(t)  rows=6000 blocks=6 time=0.29ms
  std::string ToString() const;
  /// Machine-readable dump for bench perf records.
  std::string ToJson() const;
};

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_QUERY_STATS_H_
