#include "src/observe/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <tuple>

#include "src/observe/json.h"

namespace tde {
namespace observe {

namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* e = std::getenv("TDE_STATS");
    return !(e != nullptr && e[0] == '0' && e[1] == '\0');
  }();
  return enabled;
}

const char* KindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

bool StatsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetStatsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void Histogram::Record(uint64_t v) {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t b = bucket(i);
    if (rank < b) {
      // Midpoint of the bucket's value range. The last bucket's range is
      // [2^63, UINT64_MAX]; 1 << kBuckets-1 would overflow.
      const uint64_t lo = BucketLow(i);
      const uint64_t hi = i == 0            ? 0
                          : i >= kBuckets - 1
                              ? std::numeric_limits<uint64_t>::max()
                              : (uint64_t{1} << i) - 1;
      return lo + (hi - lo) / 2;
    }
    rank -= b;
  }
  return BucketLow(kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

template <typename T>
T* MetricsRegistry::GetNamed(std::deque<std::pair<std::string, T>>* store,
                             const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, m] : *store) {
    if (n == name) return &m;
  }
  // Atomics are immovable; construct the pair's members in place.
  store->emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple());
  return &store->back().second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetNamed(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetNamed(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetNamed(&histograms_, name);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [n, c] : counters_) {
      MetricSample s;
      s.name = n;
      s.kind = MetricKind::kCounter;
      s.value = static_cast<int64_t>(c.value());
      out.push_back(std::move(s));
    }
    for (const auto& [n, g] : gauges_) {
      MetricSample s;
      s.name = n;
      s.kind = MetricKind::kGauge;
      s.value = g.value();
      out.push_back(std::move(s));
    }
    for (const auto& [n, h] : histograms_) {
      MetricSample s;
      s.name = n;
      s.kind = MetricKind::kHistogram;
      s.value = static_cast<int64_t>(h.count());
      s.sum = h.sum();
      s.p50 = h.ApproxQuantile(0.5);
      s.p90 = h.ApproxQuantile(0.9);
      s.p99 = h.ApproxQuantile(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"kind\":\"" +
           KindName(s.kind) + "\",\"value\":" + std::to_string(s.value);
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"sum\":" + std::to_string(s.sum) +
             ",\"p50\":" + std::to_string(s.p50) +
             ",\"p90\":" + std::to_string(s.p90) +
             ",\"p99\":" + std::to_string(s.p99);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  auto family = [](const std::string& name) {
    std::string out = "tde_";
    for (char c : name) {
      out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    return out;
  };
  std::string out;
  for (const MetricSample& s : Snapshot()) {
    const std::string f = family(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + f + " counter\n";
        out += f + " " + std::to_string(s.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + f + " gauge\n";
        out += f + " " + std::to_string(s.value) + "\n";
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + f + " summary\n";
        out += f + "{quantile=\"0.5\"} " + std::to_string(s.p50) + "\n";
        out += f + "{quantile=\"0.9\"} " + std::to_string(s.p90) + "\n";
        out += f + "{quantile=\"0.99\"} " + std::to_string(s.p99) + "\n";
        out += f + "_sum " + std::to_string(s.sum) + "\n";
        out += f + "_count " + std::to_string(s.value) + "\n";
        break;
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) c.Reset();
  for (auto& [n, g] : gauges_) g.Reset();
  for (auto& [n, h] : histograms_) h.Reset();
}

}  // namespace observe
}  // namespace tde
