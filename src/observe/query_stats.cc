#include "src/observe/query_stats.h"

#include <cstdio>

#include "src/observe/json.h"

namespace tde {
namespace observe {

namespace {

std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

void RenderNode(const OperatorStats& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  *out += "  rows=" + std::to_string(node.rows) +
          " blocks=" + std::to_string(node.blocks) +
          " time=" + Ms(node.total_ns());
  if (!node.children.empty()) {
    *out += " (self " + Ms(node.self_ns()) + ")";
  }
  for (const auto& [label, value] : node.extras) {
    *out += " " + label + "=" + std::to_string(value);
  }
  *out += "\n";
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

void JsonNode(const OperatorStats& node, std::string* out) {
  *out += "{\"name\":\"" + JsonEscape(node.name) +
          "\",\"rows\":" + std::to_string(node.rows) +
          ",\"blocks\":" + std::to_string(node.blocks) +
          ",\"open_ns\":" + std::to_string(node.open_ns) +
          ",\"next_ns\":" + std::to_string(node.next_ns) +
          ",\"close_ns\":" + std::to_string(node.close_ns);
  if (!node.extras.empty()) {
    *out += ",\"extras\":{";
    bool first = true;
    for (const auto& [label, value] : node.extras) {
      if (!first) *out += ",";
      first = false;
      *out += "\"" + JsonEscape(label) + "\":" + std::to_string(value);
    }
    *out += "}";
  }
  *out += ",\"children\":[";
  bool first = true;
  for (const auto& child : node.children) {
    if (!first) *out += ",";
    first = false;
    JsonNode(*child, out);
  }
  *out += "]}";
}

}  // namespace

uint64_t OperatorStats::self_ns() const {
  uint64_t t = total_ns();
  for (const auto& child : children) {
    const uint64_t c = child->total_ns();
    t = t > c ? t - c : 0;
  }
  return t;
}

std::string QueryStats::ToString() const {
  std::string out;
  if (root != nullptr) RenderNode(*root, 0, &out);
  out += "total: " + Ms(total_ns) + "\n";
  if (journal_id != 0) {
    out += "journal query id: " + std::to_string(journal_id) + "\n";
  }
  if (!notes.empty()) {
    out += "tactical decisions:\n";
    for (const std::string& n : notes) {
      out += "  " + n + "\n";
    }
  }
  return out;
}

std::string QueryStats::ToJson() const {
  std::string out = "{\"total_ns\":" + std::to_string(total_ns) + ",\"root\":";
  if (root != nullptr) {
    JsonNode(*root, &out);
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

}  // namespace observe
}  // namespace tde
