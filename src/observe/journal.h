#ifndef TDE_OBSERVE_JOURNAL_H_
#define TDE_OBSERVE_JOURNAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tde {
namespace observe {

/// The registry counters a single query can be charged for — the
/// compressed-domain wins of PRs 2-4, previously only visible as global
/// cumulative totals. Every increment flows through QueryCount(), which
/// adds to the global MetricsRegistry counter *and* to the StatsScope of
/// the query running on the incrementing thread, so per-query deltas in
/// the journal sum exactly to the global counters — including under
/// concurrent queries, because each increment lands in exactly one scope.
enum class QueryCounter : int {
  kBytesScannedCompressed = 0,  // stored bytes the scans traversed
  kBytesScannedDecoded,         // bytes after decode (rows * lane width)
  kCacheHits,                   // pager.hits — materializations avoided
  kCacheMisses,                 // pager.misses — cold-column faults
  kCacheBytesRead,              // pager.bytes_read — blob bytes fetched
  kRowsPruned,                  // filter.rows_pruned — metadata/run prunes
  kRunsSkipped,                 // filter.runs_skipped
  kSegmentsPruned,              // filter.segments_pruned — zone-map skips
  kDictRewrites,                // filter.dict_rewrites
  kRunsFolded,                  // agg.runs_folded
  kGroupsLateMaterialized,      // agg.groups_late_materialized
  kMetadataAnswers,             // agg.metadata_answers
  kRowsMaterialized,            // sort.rows_materialized — rows a sort kept
  kTopNSegmentsSkipped,         // sort.topn_segments_skipped — zone skips
  kDictKeySorts,                // sort.dict_key_sorts — integer-domain keys
  kRunsSorted,                  // sort.runs_sorted — runs ordered, not rows
  kCount,
};

inline constexpr int kNumQueryCounters =
    static_cast<int>(QueryCounter::kCount);

/// Global metric name of a query counter ("pager.hits", ...).
const char* QueryCounterMetricName(QueryCounter c);
/// Column name the counter appears under in tde_queries ("cache_hits", ...).
const char* QueryCounterColumnName(QueryCounter c);

/// Records `n` events against counter `c`: the global registry counter and
/// the calling thread's active StatsScope (if any). No-op when stats
/// collection is disabled — one relaxed load on the hot path.
void QueryCount(QueryCounter c, uint64_t n = 1);

/// Per-query counter sink. The executor opens one scope around each query
/// (build + run); collection points attribute through QueryCount. Scopes
/// are thread-local and nest (the previous scope is restored on
/// destruction). Worker threads spawned inside a query adopt the parent's
/// scope with StatsScope::Bind, which also folds their thread CPU time
/// into the scope.
class StatsScope {
 public:
  StatsScope();
  ~StatsScope();

  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  void Add(QueryCounter c, uint64_t n) {
    v_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value(QueryCounter c) const {
    return v_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  /// CPU nanoseconds attributed to this scope so far: the opening thread's
  /// consumption since construction plus every unbound worker's total.
  uint64_t CpuNs() const;

  /// The scope active on the calling thread (null outside any query).
  static StatsScope* Current();

  /// RAII adoption of a scope by a worker thread: installs `scope` as the
  /// thread's current scope and, on destruction, credits the thread's CPU
  /// time to it. A null scope is a no-op, so call sites need no stats-
  /// enabled check.
  class Bind {
   public:
    explicit Bind(StatsScope* scope);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    StatsScope* scope_;
    StatsScope* prev_;
    uint64_t cpu0_ = 0;
  };

 private:
  std::array<std::atomic<uint64_t>, kNumQueryCounters> v_{};
  std::atomic<uint64_t> worker_cpu_ns_{0};
  uint64_t own_cpu0_ = 0;
  StatsScope* parent_;
};

/// CPU time of the calling thread in nanoseconds (CLOCK_THREAD_CPUTIME_ID).
uint64_t ThreadCpuNs();

/// One completed query, as recorded in the journal.
struct QueryJournalEntry {
  uint64_t id = 0;
  /// SQL text (truncated to kMaxSqlBytes); empty for plan-API queries.
  std::string sql;
  /// FNV-1a hash of the optimized plan's rendering: queries with the same
  /// shape share a fingerprint regardless of literals' formatting.
  uint64_t plan_fingerprint = 0;
  uint64_t wall_ns = 0;
  uint64_t cpu_ns = 0;
  uint64_t rows_out = 0;
  bool ok = true;
  /// Delta snapshot of the query-attributable counters (QueryCounter
  /// order): what *this* query scanned, faulted, pruned and folded.
  std::array<uint64_t, kNumQueryCounters> counters{};

  /// {"id":...,"sql":...,...,"cache_hits":...} — one NDJSON record.
  std::string ToJson() const;
};

/// Fixed-capacity, thread-safe ring of completed queries. One process-wide
/// instance behind Global(); scoped instances for tests. Recording is one
/// mutex acquisition per *query* (not per row), so it never shows up in
/// operator hot paths.
class QueryJournal {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kMaxSqlBytes = 512;

  static QueryJournal& Global();

  explicit QueryJournal(size_t capacity = kDefaultCapacity);

  /// Allocates the next query id (monotonic, never reused, starts at 1).
  uint64_t NextId();

  /// Appends an entry, evicting the oldest past capacity, and emits the
  /// slow-query line to stderr when the entry's wall time meets the
  /// TDE_SLOW_QUERY_MS threshold.
  void Record(QueryJournalEntry entry);

  /// Entries currently retained, oldest first.
  std::vector<QueryJournalEntry> Snapshot() const;

  /// Newline-delimited JSON, one entry per line, oldest first.
  std::string ToNdjson() const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t n);

  /// Slow-query threshold in milliseconds; < 0 disables. Initialized from
  /// the TDE_SLOW_QUERY_MS environment variable (unset disables).
  static int64_t SlowQueryThresholdMs();
  static void SetSlowQueryThresholdMs(int64_t ms);

 private:
  mutable std::mutex mu_;
  std::deque<QueryJournalEntry> entries_;
  size_t capacity_;
  std::atomic<uint64_t> next_id_{1};
};

/// Thread-local "SQL text of the query being executed": Engine::ExecuteSql
/// installs one of these so the executor can stamp journal entries with
/// the originating statement. The view must outlive the scope.
class ScopedQueryText {
 public:
  explicit ScopedQueryText(std::string_view sql);
  ~ScopedQueryText();
  ScopedQueryText(const ScopedQueryText&) = delete;
  ScopedQueryText& operator=(const ScopedQueryText&) = delete;

 private:
  std::string_view prev_;
};

/// The SQL text installed on this thread (empty outside ExecuteSql).
std::string_view CurrentQueryText();

/// Journal id of the last query recorded by the calling thread (0 before
/// any). EXPLAIN ANALYZE prints it so a plan can be joined against
/// tde_queries after the fact.
uint64_t LastJournalIdOnThread();
void SetLastJournalIdOnThread(uint64_t id);

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_JOURNAL_H_
