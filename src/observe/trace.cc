#include "src/observe/trace.h"

#include <cstdio>

#include "src/observe/json.h"

namespace tde {
namespace observe {

namespace {

/// Small dense thread ids (Chrome renders one track per tid).
uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{0};
  thread_local uint64_t id = next.fetch_add(1);
  return id;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* r = new TraceRecorder();
  return *r;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRecorder::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.dur_us) + "}";
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

TraceSpan::TraceSpan(std::string name, std::string category) {
  TraceRecorder& r = TraceRecorder::Global();
  if (!r.enabled()) return;
  name_ = std::move(name);
  category_ = std::move(category);
  start_us_ = r.NowMicros();
  active_ = true;
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  TraceRecorder& r = TraceRecorder::Global();
  TraceEvent e;
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.start_us = start_us_;
  e.dur_us = r.NowMicros() - start_us_;
  e.tid = CurrentThreadId();
  r.Record(std::move(e));
}

TraceSpan::~TraceSpan() { End(); }

}  // namespace observe
}  // namespace tde
