#ifndef TDE_OBSERVE_IMPORT_STATS_H_
#define TDE_OBSERVE_IMPORT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tde {
namespace observe {

/// The encoding outcome of one imported column — the (column stats →
/// chosen encoding → achieved ratio) record an encoding advisor would
/// learn from, and the raw material of the paper's Fig. 5/8/9 analyses.
struct ColumnImportStats {
  std::string column;
  std::string type;          // logical type name
  std::string encoding;      // final encoding name (e.g. "dictionary")
  uint64_t rows = 0;
  uint64_t input_bytes = 0;    // un-encoded footprint (lanes + heap)
  uint64_t encoded_bytes = 0;  // stream + heap + array dictionary
  int encoding_changes = 0;    // mid-stream re-encodes (Sect. 3.2)
  uint64_t bytes_written = 0;  // total written including rewrites
  /// O(1)/O(entries) header manipulations applied in post-processing
  /// (type narrowing, dictionary-entry remapping for heap sorting).
  uint64_t header_manipulations = 0;
  uint8_t token_width = 8;  // final per-row token width in bytes

  double compression_ratio() const {
    return encoded_bytes == 0
               ? 0.0
               : static_cast<double>(input_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

/// Telemetry for one import (TextScan parse + FlowTable encode).
struct ImportStats {
  std::string table_name;
  // Parse phase.
  uint64_t bytes_parsed = 0;
  uint64_t rows = 0;
  uint64_t parse_errors = 0;
  double parse_seconds = 0;
  // Encode phase.
  double encode_seconds = 0;
  std::vector<ColumnImportStats> columns;

  uint64_t input_bytes() const;
  uint64_t encoded_bytes() const;
  double compression_ratio() const;
  /// Parse throughput in rows per second (0 when unmeasured).
  double rows_per_second() const {
    return parse_seconds > 0 ? static_cast<double>(rows) / parse_seconds : 0;
  }

  /// Human-readable per-column table.
  std::string ToString() const;
  /// Machine-readable perf record for benches and the tde_stats dump.
  std::string ToJson() const;
};

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_IMPORT_STATS_H_
