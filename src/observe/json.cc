#include "src/observe/json.h"

#include <cstdio>

namespace tde {
namespace observe {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default: {
        // Cast first: a plain char is signed on most ABIs, and printing a
        // sign-extended negative through %04x would emit garbage escapes.
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          *out += c;
        }
      }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  AppendJsonEscaped(out, s);
  *out += '"';
}

}  // namespace observe
}  // namespace tde
