#ifndef TDE_OBSERVE_METRICS_H_
#define TDE_OBSERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tde {
namespace observe {

/// Global stats switch. All engine-side collection points (operator
/// wrappers, import telemetry, registry counters) consult this flag, so a
/// single store turns the whole observability layer off for overhead
/// measurements. Initialized from the TDE_STATS environment variable
/// ("0" disables); defaults to enabled.
bool StatsEnabled();
void SetStatsEnabled(bool enabled);

/// A monotonically increasing counter. Handle semantics: pointers returned
/// by MetricsRegistry stay valid for the registry's lifetime, so hot paths
/// look the counter up once and then do a relaxed atomic add per event.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A last-value gauge (e.g. current queue depth, last compression ratio in
/// parts-per-thousand).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Relative adjustment (e.g. inflight counts: +1 on entry, -1 on exit).
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A histogram with fixed log2 buckets: bucket i counts values v with
/// bit_width(v) == i, i.e. bucket 0 holds v == 0, bucket i holds
/// [2^(i-1), 2^i). 65 buckets cover the whole uint64 range with no
/// configuration and no allocation; recording is two relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Lower bound of bucket i's value range (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLow(int i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }
  /// Approximate quantile from the bucket midpoints, q in [0, 1].
  uint64_t ApproxQuantile(double q) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// One metric flattened for export.
struct MetricSample {
  std::string name;
  MetricKind kind;
  /// Counter/gauge value; histogram count.
  int64_t value = 0;
  /// Histogram only.
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// A lock-cheap named-metric registry. Registration (name lookup) takes a
/// mutex; the returned handles are updated with relaxed atomics and never
/// move (node-stable std::deque storage), so steady-state recording is
/// lock-free. One process-wide instance lives behind Global(); scoped
/// registries can be constructed for tests.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Flattens every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// {"metrics":[{"name":...,"kind":...,"value":...},...]}
  std::string ToJson() const;

  /// Prometheus text exposition format (version 0.0.4): one family per
  /// metric, names sanitized to [a-zA-Z0-9_] and prefixed "tde_".
  /// Histograms export as summaries (quantile series + _sum + _count).
  std::string RenderPrometheus() const;

  /// Zeroes every metric (tests, bench repetitions). Handles stay valid.
  void Reset();

 private:
  template <typename T>
  T* GetNamed(std::deque<std::pair<std::string, T>>* store,
              const std::string& name);

  mutable std::mutex mu_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace observe
}  // namespace tde

#endif  // TDE_OBSERVE_METRICS_H_
