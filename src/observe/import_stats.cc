#include "src/observe/import_stats.h"

#include <cstdio>

#include "src/observe/json.h"

namespace tde {
namespace observe {

namespace {
std::string Fmt(const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

uint64_t ImportStats::input_bytes() const {
  uint64_t n = 0;
  for (const ColumnImportStats& c : columns) n += c.input_bytes;
  return n;
}

uint64_t ImportStats::encoded_bytes() const {
  uint64_t n = 0;
  for (const ColumnImportStats& c : columns) n += c.encoded_bytes;
  return n;
}

double ImportStats::compression_ratio() const {
  const uint64_t enc = encoded_bytes();
  return enc == 0 ? 0.0
                  : static_cast<double>(input_bytes()) /
                        static_cast<double>(enc);
}

std::string ImportStats::ToString() const {
  std::string out = "import '" + table_name + "': " + std::to_string(rows) +
                    " rows, " + std::to_string(bytes_parsed) +
                    " bytes parsed, " + std::to_string(parse_errors) +
                    " parse errors, " + Fmt("%.0f", rows_per_second()) +
                    " rows/s, ratio " + Fmt("%.2f", compression_ratio()) +
                    "x\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-24s %-10s %-18s %12s %12s %7s %s\n",
                "column", "type", "encoding", "input", "encoded", "ratio",
                "changes");
  out += line;
  for (const ColumnImportStats& c : columns) {
    std::snprintf(line, sizeof(line),
                  "  %-24s %-10s %-18s %12llu %12llu %6.2fx %7d\n",
                  c.column.c_str(), c.type.c_str(), c.encoding.c_str(),
                  static_cast<unsigned long long>(c.input_bytes),
                  static_cast<unsigned long long>(c.encoded_bytes),
                  c.compression_ratio(), c.encoding_changes);
    out += line;
  }
  return out;
}

std::string ImportStats::ToJson() const {
  std::string out = "{\"table\":\"" + JsonEscape(table_name) +
                    "\",\"rows\":" + std::to_string(rows) +
                    ",\"bytes_parsed\":" + std::to_string(bytes_parsed) +
                    ",\"parse_errors\":" + std::to_string(parse_errors) +
                    ",\"parse_seconds\":" + Fmt("%.6f", parse_seconds) +
                    ",\"encode_seconds\":" + Fmt("%.6f", encode_seconds) +
                    ",\"rows_per_second\":" + Fmt("%.1f", rows_per_second()) +
                    ",\"compression_ratio\":" +
                    Fmt("%.4f", compression_ratio()) + ",\"columns\":[";
  bool first = true;
  for (const ColumnImportStats& c : columns) {
    if (!first) out += ",";
    first = false;
    out += "{\"column\":\"" + JsonEscape(c.column) + "\",\"type\":\"" +
           JsonEscape(c.type) + "\",\"encoding\":\"" + JsonEscape(c.encoding) +
           "\",\"rows\":" + std::to_string(c.rows) +
           ",\"input_bytes\":" + std::to_string(c.input_bytes) +
           ",\"encoded_bytes\":" + std::to_string(c.encoded_bytes) +
           ",\"compression_ratio\":" + Fmt("%.4f", c.compression_ratio()) +
           ",\"encoding_changes\":" + std::to_string(c.encoding_changes) +
           ",\"bytes_written\":" + std::to_string(c.bytes_written) +
           ",\"header_manipulations\":" +
           std::to_string(c.header_manipulations) +
           ",\"token_width\":" + std::to_string(c.token_width) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace observe
}  // namespace tde
