#ifndef TDE_TEXTSCAN_TEXT_SCAN_H_
#define TDE_TEXTSCAN_TEXT_SCAN_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "src/exec/block.h"
#include "src/textscan/inference.h"

namespace tde {

/// Parse-side telemetry of one TextScan run (import observability).
struct TextScanStats {
  uint64_t bytes = 0;         // input bytes (whole buffer/file)
  uint64_t rows = 0;          // rows produced so far
  uint64_t parse_errors = 0;  // unparseable fields turned into NULLs
  double parse_seconds = 0;   // wall time spent inside FillBatch
  double rows_per_second() const {
    return parse_seconds > 0 ? static_cast<double>(rows) / parse_seconds : 0;
  }
};

struct TextScanOptions {
  /// Provide to skip type/name inference.
  std::optional<Schema> schema;
  std::optional<bool> has_header;
  /// 0 = infer.
  char field_separator = 0;
  size_t sample_rows = 100;
  /// Parse columns on separate threads (Sect. 5.1.2-5.1.3): the column
  /// parsers produce independent output from shared read-only state, and
  /// the buffer-oriented parsers hold no locale lock, so this is safe.
  bool parallel = false;
  int workers = 4;
  /// Columns to emit (empty = all) — e.g. only the scalar columns for the
  /// Fig. 4 "Scalars" configuration.
  std::vector<std::string> columns;
};

/// TextScan (Sect. 5.1): a flow operator that reads a memory-mapped byte
/// stream and produces blocks of typed data, inferring separator, types
/// and header if no schema is given. Unparseable fields become NULLs and
/// are counted.
class TextScan : public Operator {
 public:
  static Result<std::unique_ptr<TextScan>> FromFile(const std::string& path,
                                                    TextScanOptions options = {});
  static std::unique_ptr<TextScan> FromBuffer(std::string data,
                                              TextScanOptions options = {});

  Status Open() override;
  Status Next(Block* block, bool* eos) override;
  const Schema& output_schema() const override { return schema_; }

  uint64_t parse_errors() const { return parse_errors_; }
  char field_separator() const { return format_.field_separator; }
  bool has_header() const { return format_.has_header; }
  /// The full inferred schema (before column projection).
  const Schema& file_schema() const { return format_.schema; }
  /// Parse telemetry (bytes, rows, errors, wall time).
  const TextScanStats& scan_stats() const { return scan_stats_; }

 private:
  explicit TextScan(std::string data, TextScanOptions options)
      : data_(std::move(data)), options_(std::move(options)) {}

  Status FillBatch();
  /// Renames format_.schema's fields from the first record — for callers
  /// forcing has_header=true past inference's verdict.
  void AdoptHeaderNames();

  std::string data_;
  TextScanOptions options_;
  InferredFormat format_;
  Schema schema_;                  // projected output schema
  std::vector<size_t> col_map_;    // output column -> file column
  size_t pos_ = 0;
  uint64_t parse_errors_ = 0;
  std::deque<Block> pending_;
  bool input_done_ = false;
  TextScanStats scan_stats_;
};

}  // namespace tde

#endif  // TDE_TEXTSCAN_TEXT_SCAN_H_
