#include "src/textscan/inference.h"

#include <algorithm>
#include <array>

#include "src/textscan/parsers.h"

namespace tde {

void SplitRecord(std::string_view record, char sep,
                 std::vector<std::string_view>* fields) {
  fields->clear();
  size_t start = 0;
  bool in_quotes = false;
  for (size_t i = 0; i <= record.size(); ++i) {
    if (i == record.size() || (record[i] == sep && !in_quotes)) {
      fields->push_back(record.substr(start, i - start));
      start = i + 1;
      continue;
    }
    // A doubled quote inside a quoted field toggles twice — back to
    // quoted, which is exactly right for an escaped literal quote.
    if (record[i] == '"') in_quotes = !in_quotes;
  }
}

bool NextRecord(std::string_view data, size_t* pos, std::string_view* record) {
  if (*pos >= data.size()) return false;
  size_t end = *pos;
  bool in_quotes = false;
  while (end < data.size() && (data[end] != '\n' || in_quotes)) {
    if (data[end] == '"') in_quotes = !in_quotes;
    ++end;
  }
  size_t len = end - *pos;
  if (len > 0 && data[*pos + len - 1] == '\r') --len;
  *record = data.substr(*pos, len);
  *pos = end < data.size() ? end + 1 : end;
  return true;
}

namespace {

/// Candidate types in specificity order: the earliest candidate with zero
/// (or minimal) errors wins, falling back to string.
constexpr std::array<TypeId, 5> kCandidates = {
    TypeId::kBool, TypeId::kInteger, TypeId::kDate, TypeId::kDateTime,
    TypeId::kReal};

char InferSeparator(std::string_view data, size_t sample_rows) {
  constexpr std::array<char, 4> kSeps = {',', '\t', '|', ';'};
  // Pick the separator whose per-record field count is most consistent
  // (and greater than one).
  char best = ',';
  double best_score = -1;
  for (char sep : kSeps) {
    size_t pos = 0;
    std::string_view rec;
    std::vector<std::string_view> fields;
    std::vector<size_t> counts;
    while (counts.size() < sample_rows && NextRecord(data, &pos, &rec)) {
      if (rec.empty()) continue;
      // Quote-aware: a separator inside a quoted field is content and
      // must not inflate this candidate's field count.
      SplitRecord(rec, sep, &fields);
      counts.push_back(fields.size());
    }
    if (counts.empty()) continue;
    const size_t mode = counts[0];
    if (mode <= 1) continue;
    size_t agree = 0;
    for (size_t c : counts) agree += (c == mode);
    const double score =
        static_cast<double>(agree) / static_cast<double>(counts.size()) +
        1e-6 * static_cast<double>(mode);
    if (score > best_score) {
      best_score = score;
      best = sep;
    }
  }
  return best;
}

}  // namespace

Result<InferredFormat> InferFormat(std::string_view data,
                                   const InferenceOptions& options) {
  InferredFormat out;
  out.field_separator = options.field_separator != 0
                            ? options.field_separator
                            : InferSeparator(data, options.sample_rows);

  // Collect a sample block of rows.
  std::vector<std::vector<std::string_view>> sample;
  size_t pos = 0;
  std::string_view rec;
  std::vector<std::string_view> fields;
  while (sample.size() < options.sample_rows + 1 &&
         NextRecord(data, &pos, &rec)) {
    if (rec.empty()) continue;
    SplitRecord(rec, out.field_separator, &fields);
    sample.push_back(fields);
  }
  if (sample.empty()) {
    return {Status::ParseError("no records in input")};
  }
  const size_t ncols = sample[0].size();

  // Competitive typing over rows 1..n (row 0 may be a header); the parser
  // producing the fewest errors wins (Sect. 5.1.1).
  std::vector<TypeId> types(ncols, TypeId::kString);
  for (size_t c = 0; c < ncols; ++c) {
    size_t best_errors = std::numeric_limits<size_t>::max();
    TypeId best = TypeId::kString;
    for (TypeId cand : kCandidates) {
      size_t errors = 0;
      size_t nonempty = 0;
      bool saw_alpha_bool = false;
      for (size_t r = 1; r < sample.size(); ++r) {
        if (c >= sample[r].size()) continue;
        const std::string_view f = TrimField(sample[r][c]);
        if (f.empty()) continue;
        ++nonempty;
        Lane lane;
        if (!ParseField(cand, f, &lane)) ++errors;
        if (cand == TypeId::kBool && !f.empty() &&
            (f[0] == 't' || f[0] == 'T' || f[0] == 'f' || f[0] == 'F')) {
          saw_alpha_bool = true;
        }
      }
      // A column of bare 0/1 digits is an integer, not a boolean: the bool
      // candidate only wins if a true/false spelling appears.
      if (cand == TypeId::kBool && !saw_alpha_bool) continue;
      if (nonempty == 0) {
        best = TypeId::kString;
        break;
      }
      if (errors == 0) {
        best = cand;
        best_errors = 0;
        break;  // candidates are ordered by specificity
      }
      if (errors < best_errors) {
        best_errors = errors;
        best = cand;
      }
    }
    // Only a perfect parse wins; otherwise the column stays a string.
    if (best_errors != 0 && best != TypeId::kString) best = TypeId::kString;
    types[c] = best;
  }

  // Header detection (Sect. 5.1.1): apply the winning parsers to the first
  // row; if there were errors, the values are the column names.
  bool header = false;
  for (size_t c = 0; c < ncols && c < sample[0].size(); ++c) {
    if (types[c] == TypeId::kString) continue;
    const std::string_view f = TrimField(sample[0][c]);
    if (f.empty()) continue;
    Lane lane;
    if (!ParseField(types[c], f, &lane)) {
      header = true;
      break;
    }
  }
  out.has_header = header;

  std::string scratch;
  for (size_t c = 0; c < ncols; ++c) {
    std::string name;
    if (header && c < sample[0].size()) {
      name = std::string(UnquoteField(sample[0][c], &scratch));
    }
    if (name.empty()) name = "col" + std::to_string(c);
    out.schema.AddField({std::move(name), types[c]});
  }
  return out;
}

}  // namespace tde
