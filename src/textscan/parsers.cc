#include "src/textscan/parsers.h"

#include <bit>
#include <charconv>
#include <cstdint>
#include <limits>
#include <system_error>

namespace tde {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

bool ParseUnsignedDigits(std::string_view s, size_t* pos, uint64_t* out,
                         int* digits) {
  uint64_t v = 0;
  int n = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    const uint64_t d = static_cast<uint64_t>(s[*pos] - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
    ++*pos;
    ++n;
  }
  *out = v;
  *digits = n;
  return n > 0;
}

}  // namespace

std::string_view TrimField(std::string_view s) {
  while (!s.empty() && IsSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && IsSpace(s.back())) s.remove_suffix(1);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return s;
}

std::string_view UnquoteField(std::string_view s, std::string* scratch) {
  while (!s.empty() && IsSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && IsSpace(s.back())) s.remove_suffix(1);
  if (s.size() < 2 || s.front() != '"' || s.back() != '"') return s;
  s = s.substr(1, s.size() - 2);
  if (s.find('"') == std::string_view::npos) return s;  // common case
  scratch->clear();
  for (size_t i = 0; i < s.size(); ++i) {
    scratch->push_back(s[i]);
    if (s[i] == '"' && i + 1 < s.size() && s[i + 1] == '"') ++i;
  }
  return *scratch;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimField(s);
  if (s.empty()) return false;
  size_t pos = 0;
  bool neg = false;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    pos = 1;
  }
  uint64_t v;
  int digits;
  if (!ParseUnsignedDigits(s, &pos, &v, &digits) || pos != s.size()) {
    return false;
  }
  if (neg) {
    if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return false;
    }
    *out = static_cast<int64_t>(~v + 1);
  } else {
    if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return false;
    }
    *out = static_cast<int64_t>(v);
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  // Integer mantissa + decimal exponent, never binary accumulation: the
  // old digit-by-digit `v = v*10 + d` / `scale *= 0.1` form rounds at
  // every step (0.1 is not a binary double), drifting up to several ULP
  // from the correctly-rounded value. Here digits accumulate exactly in a
  // uint64 and the decimal point only moves the exponent; the single
  // decimal->binary conversion happens once at the end.
  s = TrimField(s);
  if (s.empty()) return false;
  size_t pos = 0;
  bool neg = false;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    pos = 1;
  }
  // Non-finite spellings, matching FormatLane's %g output ("nan", "inf")
  // plus the common long forms. Case-insensitive; the sign applies ("-inf"
  // is negative infinity, "-nan" canonicalizes to the one engine NaN so a
  // round-trip through text cannot mint a second NaN bit pattern).
  {
    auto ieq = [](std::string_view a, const char* b) {
      const size_t n = std::char_traits<char>::length(b);
      if (a.size() != n) return false;
      for (size_t i = 0; i < n; ++i) {
        if ((a[i] | 0x20) != b[i]) return false;
      }
      return true;
    };
    const std::string_view rest = s.substr(pos);
    if (ieq(rest, "nan")) {
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    if (ieq(rest, "inf") || ieq(rest, "infinity")) {
      const double inf = std::numeric_limits<double>::infinity();
      *out = neg ? -inf : inf;
      return true;
    }
  }
  const size_t body = pos;  // first mantissa byte (sign stripped)
  uint64_t mantissa = 0;
  int exp10 = 0;
  int int_digits = 0;
  bool saturated = false;  // > 19 significant digits: fold into exponent
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    const uint64_t d = static_cast<uint64_t>(s[pos] - '0');
    if (!saturated && mantissa > (std::numeric_limits<uint64_t>::max() - d) / 10) {
      saturated = true;
    }
    if (saturated) {
      ++exp10;  // dropped integer digit: value is 10x the kept mantissa
    } else {
      mantissa = mantissa * 10 + d;
    }
    ++pos;
    ++int_digits;
  }
  int frac_digits = 0;
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      const uint64_t d = static_cast<uint64_t>(s[pos] - '0');
      if (!saturated &&
          mantissa > (std::numeric_limits<uint64_t>::max() - d) / 10) {
        saturated = true;
      }
      if (!saturated) {  // dropped fraction digits change nothing kept
        mantissa = mantissa * 10 + d;
        --exp10;
      }
      ++pos;
      ++frac_digits;
    }
  }
  if (int_digits + frac_digits == 0) return false;
  if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
    ++pos;
    bool eneg = false;
    if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
      eneg = s[pos] == '-';
      ++pos;
    }
    uint64_t e;
    int ed;
    if (!ParseUnsignedDigits(s, &pos, &e, &ed) || e > 400) return false;
    exp10 += eneg ? -static_cast<int>(e) : static_cast<int>(e);
  }
  if (pos != s.size()) return false;

  double v;
  // Fast path (Clinger): a mantissa representable exactly in a double and
  // a power of ten that is itself exact make one multiply/divide produce
  // the correctly-rounded result.
  static constexpr double kExactPow10[] = {
      1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10,
      1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21,
      1e22};
  if (mantissa == 0) {
    v = 0.0;
  } else if (mantissa <= (uint64_t{1} << 53) && exp10 >= -22 && exp10 <= 22) {
    v = exp10 >= 0 ? static_cast<double>(mantissa) * kExactPow10[exp10]
                   : static_cast<double>(mantissa) / kExactPow10[-exp10];
  } else if (!saturated) {
    // Slow path: "<mantissa>e<exp10>" is exactly the input value, so the
    // library's correctly-rounded conversion finishes the job (locale-free,
    // no allocation).
    char buf[48];  // 20-digit mantissa + 'e' + signed 32-bit exponent
    auto mc = std::to_chars(buf, buf + 24, mantissa);
    *mc.ptr++ = 'e';
    auto ec = std::to_chars(mc.ptr, buf + sizeof(buf), exp10);
    auto r = std::from_chars(buf, ec.ptr, v);
    if (r.ec == std::errc::result_out_of_range) {
      // |value| beyond double range: overflow to infinity, underflow to 0.
      v = exp10 > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    } else if (r.ec != std::errc()) {
      return false;
    }
  } else {
    // More significant digits than a uint64 holds: correct rounding needs
    // the dropped digits (they decide the final ULP), so give the library
    // the original digit string. The grammar was already validated above;
    // the sign was stripped so the slice matches from_chars's format.
    auto r = std::from_chars(s.data() + body, s.data() + s.size(), v);
    if (r.ec == std::errc::result_out_of_range) {
      v = exp10 > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    } else if (r.ec != std::errc()) {
      return false;
    }
  }
  *out = neg ? -v : v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  s = TrimField(s);
  if (s == "true" || s == "TRUE" || s == "True" || s == "1") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "FALSE" || s == "False" || s == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseDate(std::string_view s, int64_t* out) {
  s = TrimField(s);
  // YYYY-MM-DD (also Y/M/D).
  size_t pos = 0;
  uint64_t y, m, d;
  int dg;
  if (!ParseUnsignedDigits(s, &pos, &y, &dg) || dg != 4) return false;
  if (pos >= s.size() || (s[pos] != '-' && s[pos] != '/')) return false;
  const char sep = s[pos];
  ++pos;
  if (!ParseUnsignedDigits(s, &pos, &m, &dg) || dg > 2 || m < 1 || m > 12) {
    return false;
  }
  if (pos >= s.size() || s[pos] != sep) return false;
  ++pos;
  if (!ParseUnsignedDigits(s, &pos, &d, &dg) || dg > 2 || d < 1) {
    return false;
  }
  if (pos != s.size()) return false;
  // Per-month day validation (Gregorian): "2021-02-30" and "2021-04-31"
  // are parse errors, not dates.
  static constexpr uint8_t kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};
  const bool leap = y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
  const uint64_t month_days =
      kDaysInMonth[m - 1] + ((m == 2 && leap) ? 1 : 0);
  if (d > month_days) return false;
  *out = DaysFromCivil(static_cast<int>(y), static_cast<unsigned>(m),
                       static_cast<unsigned>(d));
  return true;
}

bool ParseDateTime(std::string_view s, int64_t* out) {
  s = TrimField(s);
  // Split on ' ' or 'T'.
  size_t split = s.find(' ');
  if (split == std::string_view::npos) split = s.find('T');
  if (split == std::string_view::npos) return false;
  int64_t days;
  if (!ParseDate(s.substr(0, split), &days)) return false;
  std::string_view t = s.substr(split + 1);
  size_t pos = 0;
  uint64_t hh, mm, ss = 0;
  int dg;
  if (!ParseUnsignedDigits(t, &pos, &hh, &dg) || dg > 2 || hh > 23) {
    return false;
  }
  if (pos >= t.size() || t[pos] != ':') return false;
  ++pos;
  if (!ParseUnsignedDigits(t, &pos, &mm, &dg) || dg > 2 || mm > 59) {
    return false;
  }
  if (pos < t.size()) {
    if (t[pos] != ':') return false;
    ++pos;
    if (!ParseUnsignedDigits(t, &pos, &ss, &dg) || dg > 2 || ss > 59) {
      return false;
    }
  }
  if (pos != t.size()) return false;
  *out = days * 86400 + static_cast<int64_t>(hh * 3600 + mm * 60 + ss);
  return true;
}

bool ParseField(TypeId type, std::string_view s, Lane* out) {
  const std::string_view t = TrimField(s);
  if (t.empty()) {
    *out = kNullSentinel;
    return true;
  }
  switch (type) {
    case TypeId::kBool: {
      bool b;
      if (!ParseBool(t, &b)) return false;
      *out = b ? 1 : 0;
      return true;
    }
    case TypeId::kInteger: {
      int64_t v;
      if (!ParseInt64(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kReal: {
      double d;
      if (!ParseDouble(t, &d)) return false;
      *out = static_cast<Lane>(std::bit_cast<uint64_t>(d));
      return true;
    }
    case TypeId::kDate: {
      int64_t v;
      if (!ParseDate(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kDateTime: {
      int64_t v;
      if (!ParseDateTime(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kString:
      return false;  // strings are sliced, not parsed
  }
  return false;
}

}  // namespace tde
