#include "src/textscan/parsers.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tde {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

bool ParseUnsignedDigits(std::string_view s, size_t* pos, uint64_t* out,
                         int* digits) {
  uint64_t v = 0;
  int n = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    const uint64_t d = static_cast<uint64_t>(s[*pos] - '0');
    if (v > (std::numeric_limits<uint64_t>::max() - d) / 10) return false;
    v = v * 10 + d;
    ++*pos;
    ++n;
  }
  *out = v;
  *digits = n;
  return n > 0;
}

}  // namespace

std::string_view TrimField(std::string_view s) {
  while (!s.empty() && IsSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && IsSpace(s.back())) s.remove_suffix(1);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    s = s.substr(1, s.size() - 2);
  }
  return s;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimField(s);
  if (s.empty()) return false;
  size_t pos = 0;
  bool neg = false;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    pos = 1;
  }
  uint64_t v;
  int digits;
  if (!ParseUnsignedDigits(s, &pos, &v, &digits) || pos != s.size()) {
    return false;
  }
  if (neg) {
    if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return false;
    }
    *out = static_cast<int64_t>(~v + 1);
  } else {
    if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return false;
    }
    *out = static_cast<int64_t>(v);
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimField(s);
  if (s.empty()) return false;
  size_t pos = 0;
  bool neg = false;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    pos = 1;
  }
  // Mantissa: digits [. digits]
  double v = 0;
  int int_digits = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    v = v * 10 + (s[pos] - '0');
    ++pos;
    ++int_digits;
  }
  int frac_digits = 0;
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    double scale = 0.1;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v += (s[pos] - '0') * scale;
      scale *= 0.1;
      ++pos;
      ++frac_digits;
    }
  }
  if (int_digits + frac_digits == 0) return false;
  // Optional exponent.
  if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
    ++pos;
    bool eneg = false;
    if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
      eneg = s[pos] == '-';
      ++pos;
    }
    uint64_t e;
    int ed;
    if (!ParseUnsignedDigits(s, &pos, &e, &ed) || e > 400) return false;
    v *= std::pow(10.0, eneg ? -static_cast<double>(e)
                             : static_cast<double>(e));
  }
  if (pos != s.size()) return false;
  *out = neg ? -v : v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  s = TrimField(s);
  if (s == "true" || s == "TRUE" || s == "True" || s == "1") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "FALSE" || s == "False" || s == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseDate(std::string_view s, int64_t* out) {
  s = TrimField(s);
  // YYYY-MM-DD (also Y/M/D).
  size_t pos = 0;
  uint64_t y, m, d;
  int dg;
  if (!ParseUnsignedDigits(s, &pos, &y, &dg) || dg != 4) return false;
  if (pos >= s.size() || (s[pos] != '-' && s[pos] != '/')) return false;
  const char sep = s[pos];
  ++pos;
  if (!ParseUnsignedDigits(s, &pos, &m, &dg) || dg > 2 || m < 1 || m > 12) {
    return false;
  }
  if (pos >= s.size() || s[pos] != sep) return false;
  ++pos;
  if (!ParseUnsignedDigits(s, &pos, &d, &dg) || dg > 2 || d < 1 || d > 31) {
    return false;
  }
  if (pos != s.size()) return false;
  *out = DaysFromCivil(static_cast<int>(y), static_cast<unsigned>(m),
                       static_cast<unsigned>(d));
  return true;
}

bool ParseDateTime(std::string_view s, int64_t* out) {
  s = TrimField(s);
  // Split on ' ' or 'T'.
  size_t split = s.find(' ');
  if (split == std::string_view::npos) split = s.find('T');
  if (split == std::string_view::npos) return false;
  int64_t days;
  if (!ParseDate(s.substr(0, split), &days)) return false;
  std::string_view t = s.substr(split + 1);
  size_t pos = 0;
  uint64_t hh, mm, ss = 0;
  int dg;
  if (!ParseUnsignedDigits(t, &pos, &hh, &dg) || dg > 2 || hh > 23) {
    return false;
  }
  if (pos >= t.size() || t[pos] != ':') return false;
  ++pos;
  if (!ParseUnsignedDigits(t, &pos, &mm, &dg) || dg > 2 || mm > 59) {
    return false;
  }
  if (pos < t.size()) {
    if (t[pos] != ':') return false;
    ++pos;
    if (!ParseUnsignedDigits(t, &pos, &ss, &dg) || dg > 2 || ss > 59) {
      return false;
    }
  }
  if (pos != t.size()) return false;
  *out = days * 86400 + static_cast<int64_t>(hh * 3600 + mm * 60 + ss);
  return true;
}

bool ParseField(TypeId type, std::string_view s, Lane* out) {
  const std::string_view t = TrimField(s);
  if (t.empty()) {
    *out = kNullSentinel;
    return true;
  }
  switch (type) {
    case TypeId::kBool: {
      bool b;
      if (!ParseBool(t, &b)) return false;
      *out = b ? 1 : 0;
      return true;
    }
    case TypeId::kInteger: {
      int64_t v;
      if (!ParseInt64(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kReal: {
      double d;
      if (!ParseDouble(t, &d)) return false;
      *out = static_cast<Lane>(std::bit_cast<uint64_t>(d));
      return true;
    }
    case TypeId::kDate: {
      int64_t v;
      if (!ParseDate(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kDateTime: {
      int64_t v;
      if (!ParseDateTime(t, &v)) return false;
      *out = v;
      return true;
    }
    case TypeId::kString:
      return false;  // strings are sliced, not parsed
  }
  return false;
}

}  // namespace tde
