#ifndef TDE_TEXTSCAN_INFERENCE_H_
#define TDE_TEXTSCAN_INFERENCE_H_

#include <string_view>
#include <vector>

#include "src/storage/schema.h"

namespace tde {

/// Splits a record into fields on `sep`, honoring RFC-4180 quoting: a
/// separator inside a double-quoted field is field content, not a split
/// point, and a doubled quote inside a quoted field is a literal quote.
/// Fields keep their surrounding quotes (UnquoteField strips and
/// unescapes them at consumption time).
void SplitRecord(std::string_view record, char sep,
                 std::vector<std::string_view>* fields);

/// Iterates records of a byte buffer (records separated by end-of-line).
/// A newline inside a double-quoted field is field content and does not
/// terminate the record (RFC 4180). Returns the next record and advances
/// *pos past its terminator; false at end of buffer.
bool NextRecord(std::string_view data, size_t* pos, std::string_view* record);

/// The format TextScan inferred (Sect. 5.1.1): field separator via simple
/// statistical analysis of a sample, column types by competitive parsing
/// (the parser with the fewest errors wins), and header detection by
/// applying the winning parsers to the first row.
struct InferredFormat {
  char field_separator = ',';
  bool has_header = false;
  Schema schema;
};

struct InferenceOptions {
  size_t sample_rows = 100;
  /// 0 = infer the separator from {',', '\t', '|', ';'}.
  char field_separator = 0;
};

Result<InferredFormat> InferFormat(std::string_view data,
                                   const InferenceOptions& options = {});

}  // namespace tde

#endif  // TDE_TEXTSCAN_INFERENCE_H_
