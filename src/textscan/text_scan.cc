#include "src/textscan/text_scan.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "src/exec/scheduler.h"
#include "src/textscan/parsers.h"

namespace tde {

namespace {
/// Rows parsed per batch: large enough to amortize worker startup when
/// parallel column parsing is on.
constexpr size_t kBatchRows = 16 * kBlockSize;
}  // namespace

Result<std::unique_ptr<TextScan>> TextScan::FromFile(const std::string& path,
                                                     TextScanOptions options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {Status::IOError("cannot open '" + path + "'")};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  const size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) {
    return {Status::IOError("short read from '" + path + "'")};
  }
  return std::unique_ptr<TextScan>(
      new TextScan(std::move(data), std::move(options)));
}

std::unique_ptr<TextScan> TextScan::FromBuffer(std::string data,
                                               TextScanOptions options) {
  return std::unique_ptr<TextScan>(
      new TextScan(std::move(data), std::move(options)));
}

Status TextScan::Open() {
  pos_ = 0;
  parse_errors_ = 0;
  pending_.clear();
  input_done_ = false;
  scan_stats_ = TextScanStats{};
  scan_stats_.bytes = data_.size();

  if (options_.schema.has_value()) {
    format_.schema = *options_.schema;
    format_.has_header = options_.has_header.value_or(false);
    format_.field_separator =
        options_.field_separator != 0 ? options_.field_separator : ',';
  } else {
    InferenceOptions inf;
    inf.sample_rows = options_.sample_rows;
    inf.field_separator = options_.field_separator;
    TDE_ASSIGN_OR_RETURN(format_, InferFormat(data_, inf));
    if (options_.has_header.has_value()) {
      // Inference only names columns from a header it detected itself; a
      // caller overriding its verdict (an all-string table defeats the
      // competitive-parsing heuristic) still wants the first row's names.
      if (*options_.has_header && !format_.has_header) {
        AdoptHeaderNames();
      }
      format_.has_header = *options_.has_header;
    }
  }

  schema_ = Schema();
  col_map_.clear();
  if (options_.columns.empty()) {
    for (size_t i = 0; i < format_.schema.num_fields(); ++i) {
      schema_.AddField(format_.schema.field(i));
      col_map_.push_back(i);
    }
  } else {
    for (const std::string& name : options_.columns) {
      TDE_ASSIGN_OR_RETURN(size_t i, format_.schema.FieldIndex(name));
      schema_.AddField(format_.schema.field(i));
      col_map_.push_back(i);
    }
  }

  // Skip the header record.
  if (format_.has_header) {
    std::string_view rec;
    NextRecord(data_, &pos_, &rec);
  }
  return Status::OK();
}

void TextScan::AdoptHeaderNames() {
  size_t pos = 0;
  std::string_view rec;
  if (!NextRecord(data_, &pos, &rec)) return;
  std::vector<std::string_view> fields;
  SplitRecord(rec, format_.field_separator, &fields);
  Schema renamed;
  for (size_t c = 0; c < format_.schema.num_fields(); ++c) {
    std::string name;
    if (c < fields.size()) {
      std::string_view f = fields[c];
      if (f.size() >= 2 && f.front() == '"' && f.back() == '"') {
        f.remove_prefix(1);
        f.remove_suffix(1);
        for (size_t i = 0; i < f.size(); ++i) {
          name += f[i];
          if (f[i] == '"' && i + 1 < f.size() && f[i + 1] == '"') ++i;
        }
      } else {
        name = std::string(f);
      }
    }
    if (name.empty()) name = format_.schema.field(c).name;
    renamed.AddField({std::move(name), format_.schema.field(c).type});
  }
  format_.schema = std::move(renamed);
}

Status TextScan::FillBatch() {
  const auto t0 = std::chrono::steady_clock::now();
  // Tokenize a batch of records into per-row field slices (shared
  // read-only state for the column parsers).
  std::vector<std::vector<std::string_view>> rows;
  rows.reserve(kBatchRows);
  std::string_view rec;
  std::vector<std::string_view> fields;
  while (rows.size() < kBatchRows && NextRecord(data_, &pos_, &rec)) {
    if (rec.empty()) continue;
    SplitRecord(rec, format_.field_separator, &fields);
    rows.push_back(fields);
  }
  if (rows.empty()) {
    input_done_ = true;
    return Status::OK();
  }
  const size_t nrows = rows.size();
  const size_t ncols = col_map_.size();

  // Parse each output column over the whole batch — independently, so the
  // columns can go to separate workers (Sect. 5.1.3).
  std::vector<std::vector<Lane>> lanes(ncols);
  std::vector<std::shared_ptr<StringHeap>> heaps(ncols);
  std::atomic<uint64_t> errors{0};

  auto parse_column = [&](size_t c) {
    const size_t file_col = col_map_[c];
    const TypeId type = schema_.field(c).type;
    std::vector<Lane>& out = lanes[c];
    out.resize(nrows);
    if (type == TypeId::kString) {
      auto heap = std::make_shared<StringHeap>();
      std::string scratch;  // per-column, so parallel workers don't share
      for (size_t r = 0; r < nrows; ++r) {
        if (file_col >= rows[r].size()) {
          out[r] = kNullSentinel;
          continue;
        }
        const std::string_view f = UnquoteField(rows[r][file_col], &scratch);
        out[r] = f.empty() ? kNullSentinel : heap->Add(f);
      }
      heaps[c] = std::move(heap);
      return;
    }
    uint64_t local_errors = 0;
    for (size_t r = 0; r < nrows; ++r) {
      if (file_col >= rows[r].size()) {
        out[r] = kNullSentinel;
        continue;
      }
      if (!ParseField(type, rows[r][file_col], &out[r])) {
        out[r] = kNullSentinel;
        ++local_errors;
      }
    }
    errors += local_errors;
  };

  if (options_.parallel && ncols > 1) {
    // One task per column on the shared pool; options_.workers survives as
    // an upper bound on this batch's fan-out. Wait() helps drain, so a
    // saturated pool cannot stall the import.
    const size_t fanout = std::min<size_t>(
        ncols, static_cast<size_t>(std::max(1, options_.workers)));
    auto group = TaskScheduler::Global().CreateGroup();
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < fanout; ++w) {
      group->Submit([&]() {
        while (true) {
          const size_t c = next.fetch_add(1);
          if (c >= ncols) return;
          parse_column(c);
        }
      });
    }
    group->Wait();
  } else {
    for (size_t c = 0; c < ncols; ++c) parse_column(c);
  }
  parse_errors_ += errors.load();

  // Slice the batch into iteration blocks.
  for (size_t start = 0; start < nrows; start += kBlockSize) {
    const size_t take = std::min<size_t>(kBlockSize, nrows - start);
    Block b;
    b.columns.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      ColumnVector& cv = b.columns[c];
      cv.type = schema_.field(c).type;
      cv.heap = heaps[c];
      cv.lanes.assign(lanes[c].begin() + static_cast<ptrdiff_t>(start),
                      lanes[c].begin() + static_cast<ptrdiff_t>(start + take));
    }
    pending_.push_back(std::move(b));
  }
  scan_stats_.rows += nrows;
  scan_stats_.parse_errors = parse_errors_;
  scan_stats_.parse_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Status::OK();
}

Status TextScan::Next(Block* block, bool* eos) {
  if (pending_.empty() && !input_done_) {
    TDE_RETURN_NOT_OK(FillBatch());
  }
  if (pending_.empty()) {
    block->columns.clear();
    *eos = true;
    return Status::OK();
  }
  *block = std::move(pending_.front());
  pending_.pop_front();
  *eos = false;
  return Status::OK();
}

}  // namespace tde
