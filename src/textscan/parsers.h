#ifndef TDE_TEXTSCAN_PARSERS_H_
#define TDE_TEXTSCAN_PARSERS_H_

#include <string_view>

#include "src/common/types.h"

namespace tde {

/// Buffer-oriented, locale-free field parsers (Sect. 5.1.3). The first
/// TextScan used the C++ standard library, whose locale-sensitive parsing
/// serializes on a singleton locale lock and made parallel parsing an
/// order of magnitude *slower* (Sect. 5.1.2); these parsers are tightly
/// written, rely on no external state, and parse at disk bandwidth.
///
/// Each returns true on success. Leading/trailing ASCII whitespace is
/// tolerated; an empty field is not a parse (use ParseField for NULLs).

bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);
bool ParseBool(std::string_view s, bool* out);          // true/false/0/1
bool ParseDate(std::string_view s, int64_t* out);       // YYYY-MM-DD
bool ParseDateTime(std::string_view s, int64_t* out);   // date[ T]HH:MM[:SS]

/// Parses one field as `type` into a lane. Empty fields become NULL
/// sentinels (returns true); unparseable fields return false. Strings are
/// not handled here — slicing a string needs no parsing.
bool ParseField(TypeId type, std::string_view s, Lane* out);

/// Strips ASCII whitespace and one level of double quotes.
std::string_view TrimField(std::string_view s);

/// Full RFC-4180 consumption of a field as sliced by SplitRecord: strips
/// whitespace and the outer quote pair like TrimField, and additionally
/// collapses doubled quotes ("") inside a quoted field to literal quotes.
/// Zero-copy when no escape is present; otherwise the unescaped bytes are
/// written into *scratch and the returned view points there (valid until
/// the next reuse of the scratch).
std::string_view UnquoteField(std::string_view s, std::string* scratch);

}  // namespace tde

#endif  // TDE_TEXTSCAN_PARSERS_H_
