#include "src/core/engine.h"

#include <sys/stat.h>

#include <algorithm>

#include "src/encoding/manipulate.h"
#include "src/exec/sort.h"
#include "src/sql/parser.h"

namespace tde {

namespace {
Result<std::shared_ptr<Table>> BuildImport(std::unique_ptr<Operator> scan,
                                           const std::string& table_name,
                                           ImportOptions options) {
  std::unique_ptr<Operator> flow = std::move(scan);
  if (!options.sort_by.empty()) {
    flow = std::make_unique<Sort>(std::move(flow), options.sort_by);
  }
  options.flow.table_name = table_name;
  return FlowTable::Build(std::move(flow), std::move(options.flow));
}
}  // namespace

Result<std::shared_ptr<Table>> Engine::ImportTextFile(
    const std::string& path, const std::string& table_name,
    ImportOptions options) {
  TDE_ASSIGN_OR_RETURN(auto scan, TextScan::FromFile(path, options.text));
  TDE_ASSIGN_OR_RETURN(
      auto table,
      BuildImport(std::move(scan), table_name, std::move(options)));
  db_.AddTable(table);
  return table;
}

Result<std::shared_ptr<Table>> Engine::ImportTextBuffer(
    std::string data, const std::string& table_name, ImportOptions options) {
  auto scan = TextScan::FromBuffer(std::move(data), options.text);
  TDE_ASSIGN_OR_RETURN(
      auto table,
      BuildImport(std::move(scan), table_name, std::move(options)));
  db_.AddTable(table);
  return table;
}

Result<QueryResult> Engine::Execute(const Plan& plan,
                                    const StrategicOptions& strategic) const {
  TDE_ASSIGN_OR_RETURN(PlanNodePtr optimized,
                       StrategicOptimize(plan.root(), strategic));
  return ExecutePlanNode(optimized);
}

Result<QueryResult> Engine::ExecuteSql(const std::string& sql) const {
  TDE_ASSIGN_OR_RETURN(sql::ParsedQuery q, sql::ParseQuery(sql, db_));
  if (q.explain) {
    TDE_ASSIGN_OR_RETURN(std::string text, ExplainPlan(q.plan));
    Schema schema({{"plan", TypeId::kString}});
    Block b;
    b.columns.resize(1);
    b.columns[0].type = TypeId::kString;
    auto heap = std::make_shared<StringHeap>();
    // One row per line of the plan rendering.
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      b.columns[0].lanes.push_back(
          heap->Add(std::string_view(text).substr(start, end - start)));
      start = end + 1;
    }
    b.columns[0].heap = std::move(heap);
    std::vector<Block> blocks;
    blocks.push_back(std::move(b));
    return QueryResult(std::move(schema), std::move(blocks));
  }
  return Execute(q.plan);
}

Status Engine::SaveDatabase(const std::string& path) const {
  return WriteDatabase(db_, path);
}

Result<Engine> Engine::OpenDatabase(const std::string& path) {
  TDE_ASSIGN_OR_RETURN(Database db, ReadDatabase(path));
  Engine e;
  *e.database() = std::move(db);
  return e;
}

namespace {
Status StatFile(const std::string& path, int64_t* mtime, int64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat '" + path + "'");
  }
  *mtime = static_cast<int64_t>(st.st_mtime);
  *size = static_cast<int64_t>(st.st_size);
  return Status::OK();
}
}  // namespace

Result<std::shared_ptr<Table>> Engine::AttachTextFile(
    const std::string& path, const std::string& table_name,
    ImportOptions options) {
  Attachment att;
  att.path = path;
  att.table_name = table_name;
  att.options = options;
  TDE_RETURN_NOT_OK(StatFile(path, &att.mtime, &att.size));
  TDE_ASSIGN_OR_RETURN(auto table,
                       ImportTextFile(path, table_name, std::move(options)));
  attachments_.push_back(std::move(att));
  return table;
}

Result<int> Engine::RefreshChanged() {
  int rebuilt = 0;
  for (Attachment& att : attachments_) {
    int64_t mtime = 0, size = 0;
    TDE_RETURN_NOT_OK(StatFile(att.path, &mtime, &size));
    if (mtime == att.mtime && size == att.size) continue;
    TDE_ASSIGN_OR_RETURN(auto scan,
                         TextScan::FromFile(att.path, att.options.text));
    FlowTableOptions flow = att.options.flow;
    flow.table_name = att.table_name;
    TDE_ASSIGN_OR_RETURN(auto table,
                         FlowTable::Build(std::move(scan), std::move(flow)));
    TDE_RETURN_NOT_OK(db_.ReplaceTable(std::move(table)));
    att.mtime = mtime;
    att.size = size;
    ++rebuilt;
  }
  return rebuilt;
}

Result<int> Engine::OptimizeTable(const std::string& table_name) {
  TDE_ASSIGN_OR_RETURN(auto table, db_.GetTable(table_name));
  int converted = 0;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    Column* col = table->mutable_column(i);
    if (col->compression() != CompressionKind::kNone) continue;
    if (col->type() == TypeId::kString || col->type() == TypeId::kBool) {
      continue;  // strings are heap-compressed; booleans gain nothing
    }
    const EncodingType enc = col->data()->type();
    const bool eligible =
        enc == EncodingType::kDictionary || enc == EncodingType::kRunLength ||
        (enc == EncodingType::kFrameOfReference && col->data()->bits() <= 15);
    if (!eligible) continue;
    // Only worthwhile for genuine dimensions: small domain, many rows.
    if (enc != EncodingType::kFrameOfReference &&
        (!col->metadata().cardinality_known ||
         col->metadata().cardinality * 4 > col->rows())) {
      continue;
    }
    const Status st = AlterColumnToDictionary(col);
    if (st.ok()) {
      ++converted;
    } else if (st.code() != StatusCode::kCapacityExceeded &&
               st.code() != StatusCode::kNotImplemented) {
      return st;
    }
  }
  return converted;
}

Status AlterColumnToDictionary(Column* column) {
  if (column->compression() != CompressionKind::kNone) {
    return Status::InvalidArgument(
        "column is already dictionary compressed");
  }
  EncodedStream* stream = column->mutable_data();
  const bool signed_values = IsSignedType(column->type());

  if (stream->type() == EncodingType::kDictionary) {
    // Sect. 3.4.3: copy the encoding dictionary into a compression
    // dictionary; the encoding entries become (sorted, narrowed) tokens.
    TDE_ASSIGN_OR_RETURN(DictCompression dc,
                         EncodingToCompression(*stream, signed_values));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = std::move(dc.dictionary);
    dict->sorted = true;
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(dc.tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  if (stream->type() == EncodingType::kRunLength) {
    // Sect. 3.4.1/3.4.3: decompose into value and count streams, dictionary
    // the values, rebuild -> a scalar dictionary-compressed column with a
    // run-length encoded token stream, at O(runs) cost.
    TDE_ASSIGN_OR_RETURN(RleDecomposition parts, DecomposeRle(*stream));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = parts.values;
    std::sort(dict->values.begin(), dict->values.end());
    dict->values.erase(std::unique(dict->values.begin(), dict->values.end()),
                       dict->values.end());
    dict->sorted = true;
    for (Lane& v : parts.values) {
      v = static_cast<Lane>(
          std::lower_bound(dict->values.begin(), dict->values.end(), v) -
          dict->values.begin());
    }
    TDE_ASSIGN_OR_RETURN(auto tokens,
                         RebuildRle(parts, stream->width(),
                                    /*sign_extend=*/false));
    TDE_RETURN_NOT_OK(tokens->Finalize());
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  if (stream->type() == EncodingType::kFrameOfReference) {
    // Sect. 3.4.3's frame-of-reference variant: the sorted dictionary is
    // the frame envelope; some entries may not occur in the column.
    TDE_ASSIGN_OR_RETURN(DictCompression dc, ForToCompression(*stream));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = std::move(dc.dictionary);
    dict->sorted = true;
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(dc.tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  return Status::NotImplemented(
      "dictionary conversion requires a dictionary-, run-length- or "
      "frame-of-reference-encoded column");
}

}  // namespace tde
