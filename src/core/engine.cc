#include "src/core/engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include <cinttypes>
#include <functional>
#include <unordered_map>

#include "src/encoding/manipulate.h"
#include "src/storage/pager/format.h"
#include "src/storage/segment/segment_builder.h"
#include "src/storage/segment/segmented_stream.h"
#include "src/exec/sort.h"
#include "src/observe/introspect.h"
#include "src/observe/journal.h"
#include "src/observe/metrics.h"
#include "src/sql/parser.h"

namespace tde {

namespace {

/// Runs the import pipeline (TextScan -> optional Sort -> FlowTable) while
/// keeping the FlowTable instance in scope, so parse- and encode-side
/// telemetry can be harvested into `stats_out` after the build.
Result<std::shared_ptr<Table>> BuildImport(std::unique_ptr<TextScan> scan,
                                           const std::string& table_name,
                                           ImportOptions options,
                                           observe::ImportStats* stats_out) {
  TextScan* raw_scan = scan.get();
  std::unique_ptr<Operator> flow = std::move(scan);
  if (!options.sort_by.empty()) {
    flow = std::make_unique<Sort>(std::move(flow), options.sort_by);
  }
  options.flow.table_name = table_name;
  FlowTable ft(std::move(flow), std::move(options.flow));
  TDE_RETURN_NOT_OK(ft.Open());
  ft.Close();
  if (stats_out != nullptr && observe::StatsEnabled()) {
    const TextScanStats& parse = raw_scan->scan_stats();
    stats_out->table_name = table_name;
    stats_out->bytes_parsed = parse.bytes;
    stats_out->rows = parse.rows;
    stats_out->parse_errors = parse.parse_errors;
    stats_out->parse_seconds = parse.parse_seconds;
    stats_out->encode_seconds = ft.encode_seconds();
    stats_out->columns = ft.column_stats();
  }
  return ft.table();
}

/// Registry-side import accounting, shared by all import entry points.
void RecordImport(const observe::ImportStats& stats) {
  auto& reg = observe::MetricsRegistry::Global();
  reg.GetCounter("import.tables")->Add();
  reg.GetCounter("import.rows")->Add(stats.rows);
  reg.GetCounter("import.bytes_parsed")->Add(stats.bytes_parsed);
  reg.GetCounter("import.parse_errors")->Add(stats.parse_errors);
  reg.GetGauge("import.last_compression_ratio_ppt")
      ->Set(static_cast<int64_t>(stats.compression_ratio() * 1000));
}

}  // namespace

Result<std::shared_ptr<Table>> Engine::ImportTextFile(
    const std::string& path, const std::string& table_name,
    ImportOptions options) {
  TDE_ASSIGN_OR_RETURN(auto scan, TextScan::FromFile(path, options.text));
  observe::ImportStats stats;
  TDE_ASSIGN_OR_RETURN(
      auto table,
      BuildImport(std::move(scan), table_name, std::move(options), &stats));
  db_.AddTable(table);
  if (observe::StatsEnabled()) {
    RecordImport(stats);
    import_stats_.push_back(std::move(stats));
  }
  return table;
}

Result<std::shared_ptr<Table>> Engine::ImportTextBuffer(
    std::string data, const std::string& table_name, ImportOptions options) {
  auto scan = TextScan::FromBuffer(std::move(data), options.text);
  observe::ImportStats stats;
  TDE_ASSIGN_OR_RETURN(
      auto table,
      BuildImport(std::move(scan), table_name, std::move(options), &stats));
  db_.AddTable(table);
  if (observe::StatsEnabled()) {
    RecordImport(stats);
    import_stats_.push_back(std::move(stats));
  }
  return table;
}

Result<QueryResult> Engine::Execute(const Plan& plan,
                                    const StrategicOptions& strategic) const {
  // Readers hold the append/query lock shared for the whole run: an
  // AppendRows (exclusive) can never mutate a column mid-query, and
  // concurrent queries proceed in parallel on the shared pool.
  std::shared_lock<std::shared_mutex> read(*exec_mu_);
  // StrategicOptimize rewrites nodes in place (predicates reassigned, scan
  // column lists narrowed, rewrite flags cleared), so optimize a private
  // deep copy: the caller's plan stays pristine and can be re-executed,
  // possibly under different options.
  TDE_ASSIGN_OR_RETURN(PlanNodePtr optimized,
                       StrategicOptimize(ClonePlan(plan.root()), strategic));
  return ExecutePlanNode(optimized);
}

namespace {

/// Renders `text` as a single-column result, one row per line.
QueryResult TextResult(const std::string& column_name,
                       const std::string& text) {
  Schema schema({{column_name, TypeId::kString}});
  Block b;
  b.columns.resize(1);
  b.columns[0].type = TypeId::kString;
  auto heap = std::make_shared<StringHeap>();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    b.columns[0].lanes.push_back(
        heap->Add(std::string_view(text).substr(start, end - start)));
    start = end + 1;
  }
  b.columns[0].heap = std::move(heap);
  std::vector<Block> blocks;
  blocks.push_back(std::move(b));
  return QueryResult(std::move(schema), std::move(blocks));
}

const char* KindName(observe::MetricKind kind) {
  switch (kind) {
    case observe::MetricKind::kCounter:
      return "counter";
    case observe::MetricKind::kGauge:
      return "gauge";
    case observe::MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// Column-input makers for the virtual tables, all built through the same
/// per-column encoding pipeline as any other table.
ColumnBuildInput StrCol(const char* name) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kString;
  in.heap = std::make_shared<StringHeap>();
  return in;
}

ColumnBuildInput IntCol(const char* name) {
  ColumnBuildInput in;
  in.name = name;
  in.type = TypeId::kInteger;
  return in;
}

Result<std::shared_ptr<Table>> BuildVirtualTable(
    const char* name, std::vector<ColumnBuildInput> inputs) {
  FlowTableOptions opt;
  auto table = std::make_shared<Table>(name);
  for (ColumnBuildInput& in : inputs) {
    if (in.heap != nullptr) {
      // The builders above append without interning, but downstream
      // dictionary-code machinery (GROUP BY, string predicates) compares
      // codes, not bytes — equal strings must share one heap entry.
      auto interned = std::make_shared<StringHeap>();
      std::unordered_map<std::string, Lane> seen;
      for (Lane& t : in.lanes) {
        std::string s(in.heap->Get(t));
        auto it = seen.find(s);
        if (it == seen.end()) it = seen.emplace(s, interned->Add(s)).first;
        t = it->second;
      }
      in.heap = std::move(interned);
    }
    TDE_ASSIGN_OR_RETURN(auto col, BuildColumn(std::move(in), opt));
    table->AddColumn(std::move(col));
  }
  return table;
}

/// Materializes the tde_queries virtual table: one row per journal entry
/// (most recent queries last), the per-query counter deltas as columns.
Result<std::shared_ptr<Table>> BuildQueriesTable() {
  std::vector<ColumnBuildInput> cols;
  cols.push_back(IntCol("id"));
  cols.push_back(StrCol("sql"));
  cols.push_back(StrCol("fingerprint"));
  cols.push_back(IntCol("wall_us"));
  cols.push_back(IntCol("cpu_us"));
  cols.push_back(IntCol("rows_out"));
  cols.push_back(IntCol("ok"));
  for (int i = 0; i < observe::kNumQueryCounters; ++i) {
    cols.push_back(IntCol(observe::QueryCounterColumnName(
        static_cast<observe::QueryCounter>(i))));
  }
  for (const observe::QueryJournalEntry& e :
       observe::QueryJournal::Global().Snapshot()) {
    size_t c = 0;
    cols[c].lanes.push_back(static_cast<Lane>(e.id));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(e.sql));
    ++c;
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, e.plan_fingerprint);
    cols[c].lanes.push_back(cols[c].heap->Add(fp));
    ++c;
    cols[c].lanes.push_back(static_cast<Lane>(e.wall_ns / 1000));
    ++c;
    cols[c].lanes.push_back(static_cast<Lane>(e.cpu_ns / 1000));
    ++c;
    cols[c].lanes.push_back(static_cast<Lane>(e.rows_out));
    ++c;
    cols[c].lanes.push_back(e.ok ? 1 : 0);
    ++c;
    for (int i = 0; i < observe::kNumQueryCounters; ++i) {
      cols[c].lanes.push_back(
          static_cast<Lane>(e.counters[static_cast<size_t>(i)]));
      ++c;
    }
  }
  return BuildVirtualTable("tde_queries", std::move(cols));
}

/// Materializes the tde_columns virtual table: one row per stored column
/// with its physical shape. Unknowable fields of unloaded cold columns
/// (bit width, run count) surface as NULL.
Result<std::shared_ptr<Table>> BuildColumnsTable(const Database& db) {
  std::vector<ColumnBuildInput> cols;
  cols.push_back(StrCol("table_name"));
  cols.push_back(StrCol("column_name"));
  cols.push_back(StrCol("type"));
  cols.push_back(StrCol("encoding"));
  cols.push_back(StrCol("compression"));
  cols.push_back(StrCol("residency"));
  cols.push_back(IntCol("rows"));
  cols.push_back(IntCol("bits"));
  cols.push_back(IntCol("runs"));
  cols.push_back(IntCol("dict_entries"));
  cols.push_back(IntCol("heap_entries"));
  cols.push_back(IntCol("compressed_bytes"));
  cols.push_back(IntCol("logical_bytes"));
  cols.push_back(IntCol("ratio_ppt"));
  for (const observe::ColumnReport& r : observe::BuildColumnReports(db)) {
    size_t c = 0;
    cols[c].lanes.push_back(cols[c].heap->Add(r.table));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(r.column));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(r.type));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(r.encoding));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(r.compression));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(r.residency));
    ++c;
    cols[c++].lanes.push_back(static_cast<Lane>(r.rows));
    cols[c++].lanes.push_back(r.bits < 0 ? kNullSentinel : r.bits);
    cols[c++].lanes.push_back(r.runs < 0 ? kNullSentinel : r.runs);
    cols[c++].lanes.push_back(r.dict_entries < 0 ? kNullSentinel
                                                 : r.dict_entries);
    cols[c++].lanes.push_back(static_cast<Lane>(r.heap_entries));
    cols[c++].lanes.push_back(static_cast<Lane>(r.compressed_bytes));
    cols[c++].lanes.push_back(static_cast<Lane>(r.logical_bytes));
    cols[c++].lanes.push_back(r.ratio_ppt());
  }
  return BuildVirtualTable("tde_columns", std::move(cols));
}

/// Materializes the tde_segments virtual table: one row per stored
/// segment across every column — position, per-segment encoding, zone map
/// and residency. Monolithic columns contribute their single
/// pseudo-segment. Built from directory facts; never faults data in.
Result<std::shared_ptr<Table>> BuildSegmentsTable(const Database& db) {
  std::vector<ColumnBuildInput> cols;
  cols.push_back(StrCol("table_name"));
  cols.push_back(StrCol("column_name"));
  cols.push_back(IntCol("segment"));
  cols.push_back(IntCol("start_row"));
  cols.push_back(IntCol("rows"));
  cols.push_back(StrCol("encoding"));
  cols.push_back(IntCol("width"));
  cols.push_back(IntCol("bits"));
  cols.push_back(IntCol("physical_bytes"));
  cols.push_back(IntCol("resident"));
  cols.push_back(IntCol("open_tail"));
  cols.push_back(IntCol("min_value"));
  cols.push_back(IntCol("max_value"));
  cols.push_back(IntCol("sorted"));
  cols.push_back(IntCol("cardinality"));
  cols.push_back(IntCol("null_count"));
  for (const auto& table : db.tables()) {
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const Column& col = table->column(i);
      const std::vector<SegmentShape> shapes = col.SegmentShapes();
      for (size_t s = 0; s < shapes.size(); ++s) {
        const SegmentShape& sh = shapes[s];
        const ColumnMetadata& z = sh.zone.meta;
        size_t c = 0;
        cols[c].lanes.push_back(cols[c].heap->Add(table->name()));
        ++c;
        cols[c].lanes.push_back(cols[c].heap->Add(col.name()));
        ++c;
        cols[c++].lanes.push_back(static_cast<Lane>(s));
        cols[c++].lanes.push_back(static_cast<Lane>(sh.start_row));
        cols[c++].lanes.push_back(static_cast<Lane>(sh.rows));
        cols[c].lanes.push_back(cols[c].heap->Add(EncodingName(sh.encoding)));
        ++c;
        cols[c++].lanes.push_back(sh.width);
        cols[c++].lanes.push_back(sh.bits);
        cols[c++].lanes.push_back(static_cast<Lane>(sh.physical_bytes));
        cols[c++].lanes.push_back(sh.resident ? 1 : 0);
        cols[c++].lanes.push_back(sh.open_tail ? 1 : 0);
        cols[c++].lanes.push_back(
            z.min_max_known ? static_cast<Lane>(z.min_value) : kNullSentinel);
        cols[c++].lanes.push_back(
            z.min_max_known ? static_cast<Lane>(z.max_value) : kNullSentinel);
        cols[c++].lanes.push_back(z.sorted ? 1 : 0);
        cols[c++].lanes.push_back(z.cardinality_known
                                      ? static_cast<Lane>(z.cardinality)
                                      : kNullSentinel);
        cols[c++].lanes.push_back(sh.zone.null_count >= 0
                                      ? static_cast<Lane>(sh.zone.null_count)
                                      : kNullSentinel);
      }
    }
  }
  return BuildVirtualTable("tde_segments", std::move(cols));
}

/// Materializes the tde_cache virtual table: the column cache's residency
/// set in LRU order (empty for engines without a lazily opened database).
Result<std::shared_ptr<Table>> BuildCacheTable(
    const pager::ColumnCache* cache) {
  std::vector<ColumnBuildInput> cols;
  cols.push_back(IntCol("lru_position"));
  cols.push_back(StrCol("table_name"));
  cols.push_back(StrCol("column_name"));
  cols.push_back(IntCol("bytes"));
  cols.push_back(IntCol("pinned"));
  for (const observe::CacheEntryReport& e :
       observe::BuildCacheReport(cache).entries) {
    size_t c = 0;
    cols[c++].lanes.push_back(e.lru_position);
    cols[c].lanes.push_back(cols[c].heap->Add(e.table));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(e.column));
    ++c;
    cols[c++].lanes.push_back(static_cast<Lane>(e.bytes));
    cols[c++].lanes.push_back(e.pinned ? 1 : 0);
  }
  return BuildVirtualTable("tde_cache", std::move(cols));
}

/// Materializes the tde_metrics virtual table: one row per registered
/// metric, histogram percentiles as columns (NULL for counters/gauges).
Result<std::shared_ptr<Table>> BuildMetricsTable() {
  // Touch the shared pool so its scheduler.* metrics (pool size, tasks
  // run, queue waits) exist in the snapshot even before the first
  // parallel query constructs it.
  TaskScheduler::Global();
  std::vector<ColumnBuildInput> cols;
  cols.push_back(StrCol("metric"));
  cols.push_back(StrCol("kind"));
  cols.push_back(IntCol("value"));
  cols.push_back(IntCol("sum"));
  cols.push_back(IntCol("p50"));
  cols.push_back(IntCol("p90"));
  cols.push_back(IntCol("p99"));
  for (const observe::MetricSample& s :
       observe::MetricsRegistry::Global().Snapshot()) {
    const bool hist = s.kind == observe::MetricKind::kHistogram;
    size_t c = 0;
    cols[c].lanes.push_back(cols[c].heap->Add(s.name));
    ++c;
    cols[c].lanes.push_back(cols[c].heap->Add(KindName(s.kind)));
    ++c;
    cols[c++].lanes.push_back(s.value);
    cols[c++].lanes.push_back(hist ? static_cast<Lane>(s.sum)
                                   : kNullSentinel);
    cols[c++].lanes.push_back(hist ? static_cast<Lane>(s.p50)
                                   : kNullSentinel);
    cols[c++].lanes.push_back(hist ? static_cast<Lane>(s.p90)
                                   : kNullSentinel);
    cols[c++].lanes.push_back(hist ? static_cast<Lane>(s.p99)
                                   : kNullSentinel);
  }
  return BuildVirtualTable("tde_metrics", std::move(cols));
}

/// Materializes the tde_stats virtual table (metric, kind, value): the
/// global registry snapshot plus per-import telemetry, built through the
/// same per-column encoding pipeline as any other table.
Result<std::shared_ptr<Table>> BuildStatsTable(
    const std::vector<observe::ImportStats>& imports) {
  TaskScheduler::Global();  // scheduler.* metrics exist from first snapshot
  ColumnBuildInput metric, kind, value;
  metric.name = "metric";
  metric.type = TypeId::kString;
  metric.heap = std::make_shared<StringHeap>();
  kind.name = "kind";
  kind.type = TypeId::kString;
  kind.heap = std::make_shared<StringHeap>();
  value.name = "value";
  value.type = TypeId::kInteger;
  auto add = [&](const std::string& m, const char* k, int64_t v) {
    metric.lanes.push_back(metric.heap->Add(m));
    kind.lanes.push_back(kind.heap->Add(k));
    value.lanes.push_back(v);
  };

  for (const observe::MetricSample& s :
       observe::MetricsRegistry::Global().Snapshot()) {
    add(s.name, KindName(s.kind), s.value);
    if (s.kind == observe::MetricKind::kHistogram) {
      add(s.name + ".sum", "histogram", static_cast<int64_t>(s.sum));
      add(s.name + ".p50", "histogram", static_cast<int64_t>(s.p50));
      add(s.name + ".p99", "histogram", static_cast<int64_t>(s.p99));
    }
  }
  for (const observe::ImportStats& imp : imports) {
    const std::string prefix = "import." + imp.table_name + ".";
    add(prefix + "rows", "import", static_cast<int64_t>(imp.rows));
    add(prefix + "parse_errors", "import",
        static_cast<int64_t>(imp.parse_errors));
    add(prefix + "input_bytes", "import",
        static_cast<int64_t>(imp.input_bytes()));
    add(prefix + "encoded_bytes", "import",
        static_cast<int64_t>(imp.encoded_bytes()));
    add(prefix + "compression_ratio_ppt", "import",
        static_cast<int64_t>(imp.compression_ratio() * 1000));
    for (const observe::ColumnImportStats& c : imp.columns) {
      add(prefix + c.column + ".header_manipulations", "import",
          static_cast<int64_t>(c.header_manipulations));
      add(prefix + c.column + ".encoding_changes", "import",
          c.encoding_changes);
    }
  }

  std::vector<ColumnBuildInput> inputs;
  inputs.push_back(std::move(metric));
  inputs.push_back(std::move(kind));
  inputs.push_back(std::move(value));
  return BuildVirtualTable("tde_stats", std::move(inputs));
}

}  // namespace

Result<QueryResult> Engine::ExecuteSql(const std::string& sql) const {
  return ExecuteSql(sql, StrategicOptions{});
}

Result<QueryResult> Engine::ExecuteSql(const std::string& sql,
                                       const StrategicOptions& strategic) const {
  // The journal stamps each recorded query with the statement that spawned
  // it; the view stays valid for the whole call.
  observe::ScopedQueryText query_text(sql);
  // The virtual tables: when the query mentions one (and no real table
  // shadows the name), parse against a database copy — cheap, tables are
  // shared — extended with freshly materialized snapshots. The plan pins
  // each snapshot table through its shared_ptr.
  auto parse = [&]() -> Result<sql::ParsedQuery> {
    struct VirtualTable {
      const char* name;
      std::function<Result<std::shared_ptr<Table>>()> build;
    };
    const VirtualTable virtuals[] = {
        {"tde_stats", [&] { return BuildStatsTable(import_stats_); }},
        {"tde_queries", [] { return BuildQueriesTable(); }},
        {"tde_columns", [&] { return BuildColumnsTable(db_); }},
        {"tde_segments", [&] { return BuildSegmentsTable(db_); }},
        {"tde_cache", [&] { return BuildCacheTable(cache_.get()); }},
        {"tde_metrics", [] { return BuildMetricsTable(); }},
    };
    auto mentioned = [&](const VirtualTable& v) {
      return sql.find(v.name) != std::string::npos &&
             !db_.GetTable(v.name).ok();
    };
    bool any = false;
    for (const VirtualTable& v : virtuals) any = any || mentioned(v);
    if (!any) return sql::ParseQuery(sql, db_);
    Database extended = db_;
    for (const VirtualTable& v : virtuals) {
      if (!mentioned(v)) continue;
      TDE_ASSIGN_OR_RETURN(auto table, v.build());
      extended.AddTable(std::move(table));
    }
    return sql::ParseQuery(sql, extended);
  };
  TDE_ASSIGN_OR_RETURN(sql::ParsedQuery q, parse());

  if (q.explain) {
    if (q.analyze) {
      // EXPLAIN ANALYZE executes the plan without going through Execute(),
      // so it takes the append/query read lock itself.
      std::shared_lock<std::shared_mutex> read(*exec_mu_);
      TDE_ASSIGN_OR_RETURN(std::string text, ExplainAnalyzePlan(q.plan));
      return TextResult("plan", text);
    }
    TDE_ASSIGN_OR_RETURN(std::string text, ExplainPlan(q.plan));
    return TextResult("plan", text);
  }
  return Execute(q.plan, strategic);
}

std::string Engine::StorageReportJson() const {
  return observe::StorageReportJson(db_, cache_.get());
}

std::string Engine::StatsJson() const {
  std::string out = "{\"registry\":";
  out += observe::MetricsRegistry::Global().ToJson();
  out += ",\"imports\":[";
  for (size_t i = 0; i < import_stats_.size(); ++i) {
    if (i > 0) out += ',';
    out += import_stats_[i].ToJson();
  }
  out += "]}";
  return out;
}

Status Engine::SaveDatabase(const std::string& path) const {
  return pager::WriteDatabaseV2(db_, path);
}

Result<Engine> Engine::OpenDatabase(const std::string& path,
                                    OpenOptions options) {
  // Sniff the magic: v2 opens lazily (O(directory)), everything else takes
  // the eager v1 route, which also accepts v2 images for compatibility.
  uint8_t magic[8] = {0};
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    const size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    if (options.lazy && pager::IsV2Magic(magic, got)) {
      auto cache =
          std::make_shared<pager::ColumnCache>(options.cache_budget_bytes);
      TDE_ASSIGN_OR_RETURN(Database db,
                           pager::OpenDatabaseV2(path, cache));
      Engine e;
      *e.database() = std::move(db);
      e.cache_ = std::move(cache);
      return e;
    }
  }
  TDE_ASSIGN_OR_RETURN(Database db, ReadDatabase(path));
  Engine e;
  *e.database() = std::move(db);
  return e;
}

namespace {
Status StatFile(const std::string& path, int64_t* mtime, int64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat '" + path + "'");
  }
  *mtime = static_cast<int64_t>(st.st_mtime);
  *size = static_cast<int64_t>(st.st_size);
  return Status::OK();
}
}  // namespace

Result<std::shared_ptr<Table>> Engine::AttachTextFile(
    const std::string& path, const std::string& table_name,
    ImportOptions options) {
  Attachment att;
  att.path = path;
  att.table_name = table_name;
  att.options = options;
  TDE_RETURN_NOT_OK(StatFile(path, &att.mtime, &att.size));
  TDE_ASSIGN_OR_RETURN(auto table,
                       ImportTextFile(path, table_name, std::move(options)));
  attachments_.push_back(std::move(att));
  return table;
}

Result<int> Engine::RefreshChanged() {
  int rebuilt = 0;
  for (Attachment& att : attachments_) {
    int64_t mtime = 0, size = 0;
    TDE_RETURN_NOT_OK(StatFile(att.path, &mtime, &size));
    if (mtime == att.mtime && size == att.size) continue;
    TDE_ASSIGN_OR_RETURN(auto scan,
                         TextScan::FromFile(att.path, att.options.text));
    observe::ImportStats stats;
    TDE_ASSIGN_OR_RETURN(
        auto table,
        BuildImport(std::move(scan), att.table_name, att.options, &stats));
    TDE_RETURN_NOT_OK(db_.ReplaceTable(std::move(table)));
    if (observe::StatsEnabled()) {
      RecordImport(stats);
      import_stats_.push_back(std::move(stats));
    }
    att.mtime = mtime;
    att.size = size;
    ++rebuilt;
  }
  return rebuilt;
}

Result<uint64_t> Engine::AppendRows(const std::string& table_name,
                                    const Block& rows) {
  // Appends mutate streams, heaps and metadata in place, so they exclude
  // queries (and one another) for their duration: readers see the table
  // before or after the append, never a torn middle.
  std::unique_lock<std::shared_mutex> write(*exec_mu_);
  TDE_ASSIGN_OR_RETURN(auto table, db_.GetTable(table_name));
  if (rows.num_columns() != table->num_columns()) {
    return Status::InvalidArgument(
        "append block has " + std::to_string(rows.num_columns()) +
        " columns, table '" + table_name + "' has " +
        std::to_string(table->num_columns()));
  }
  const size_t n = rows.rows();
  for (size_t i = 0; i < rows.num_columns(); ++i) {
    const ColumnVector& in = rows.columns[i];
    const Column& col = table->column(i);
    if (in.lanes.size() != n) {
      return Status::InvalidArgument("ragged append block: column '" +
                                     col.name() + "'");
    }
    if (in.type != col.type()) {
      return Status::InvalidArgument("type mismatch appending to column '" +
                                     col.name() + "'");
    }
    if (col.compression() == CompressionKind::kArrayDict) {
      return Status::NotImplemented(
          "append to dictionary-compressed column '" + col.name() + "'");
    }
    if (col.type() == TypeId::kString && in.heap == nullptr) {
      return Status::InvalidArgument("string column '" + col.name() +
                                     "' appended without a heap");
    }
  }
  if (n == 0) return table->rows();

  for (size_t i = 0; i < rows.num_columns(); ++i) {
    const ColumnVector& in = rows.columns[i];
    Column* col = table->mutable_column(i);
    // Append mutates in place: a cold column must leave the cache first.
    TDE_RETURN_NOT_OK(col->Warm());
    std::shared_ptr<EncodedStream> cur = col->data_ptr();
    if (cur == nullptr) {
      return Status::Internal("column '" + col->name() +
                              "' has no stream to append to");
    }
    SegmentedStream* seg = nullptr;
    if (cur->segmented()) {
      seg = static_cast<SegmentedStream*>(cur.get());
    } else {
      // First append: the whole existing stream becomes sealed segment 0,
      // with the column-level metadata as its zone map.
      auto wrapped = std::make_shared<SegmentedStream>();
      if (cur->size() > 0) {
        SegmentZone zone;
        zone.meta = col->metadata();
        TDE_RETURN_NOT_OK(wrapped->AddSealed(std::move(cur), std::move(zone)));
      }
      seg = wrapped.get();
      col->set_data(std::move(wrapped));
    }

    bool any_null = false;
    bool have_mm = false;
    int64_t mn = 0, mx = 0;
    if (col->type() == TypeId::kString) {
      // Re-intern through the column's heap; appended entries land behind
      // the sorted prefix, so token order stops implying string order.
      StringHeap* heap = col->mutable_heap();
      if (heap == nullptr) {
        auto h = std::make_shared<StringHeap>();
        heap = h.get();
        col->set_heap(std::move(h));
      }
      std::vector<Lane> lanes(n);
      for (size_t r = 0; r < n; ++r) {
        if (in.lanes[r] == kNullSentinel) {
          lanes[r] = kNullSentinel;
          any_null = true;
        } else {
          lanes[r] = heap->Add(in.heap->Get(in.lanes[r]));
        }
      }
      heap->set_sorted(false);
      TDE_RETURN_NOT_OK(seg->Append(lanes.data(), n));
    } else {
      for (size_t r = 0; r < n; ++r) {
        if (in.lanes[r] == kNullSentinel) {
          any_null = true;
          continue;
        }
        const int64_t v = static_cast<int64_t>(in.lanes[r]);
        if (!have_mm || v < mn) mn = v;
        if (!have_mm || v > mx) mx = v;
        have_mm = true;
      }
      TDE_RETURN_NOT_OK(seg->Append(in.lanes.data(), n));
    }

    // Conservative column-level metadata merge: ordering/density/
    // cardinality facts no longer hold; the value envelope extends.
    ColumnMetadata* m = col->mutable_metadata();
    m->sorted = false;
    m->dense = false;
    m->unique = false;
    m->cardinality_known = false;
    if (col->type() == TypeId::kString) {
      m->min_max_known = false;
    } else if (m->min_max_known && have_mm) {
      m->min_value = std::min(m->min_value, mn);
      m->max_value = std::max(m->max_value, mx);
    } else {
      m->min_max_known = false;
    }
    if (any_null) {
      m->null_known = true;
      m->has_nulls = true;
    }
  }
  return table->rows();
}

Result<int> Engine::OptimizeTable(const std::string& table_name) {
  // AlterColumn rewrites columns in place — same exclusion as AppendRows.
  std::unique_lock<std::shared_mutex> write(*exec_mu_);
  TDE_ASSIGN_OR_RETURN(auto table, db_.GetTable(table_name));
  int converted = 0;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    Column* col = table->mutable_column(i);
    if (col->compression() != CompressionKind::kNone) continue;
    if (col->type() == TypeId::kString || col->type() == TypeId::kBool) {
      continue;  // strings are heap-compressed; booleans gain nothing
    }
    // Eligibility screens on directory facts; only candidates that pass get
    // warmed (AlterColumnToDictionary mutates in place, so a cold column
    // must be promoted out of the cache first).
    const EncodingType enc = col->encoding_type();
    if (enc != EncodingType::kDictionary && enc != EncodingType::kRunLength &&
        enc != EncodingType::kFrameOfReference) {
      continue;
    }
    if (enc == EncodingType::kFrameOfReference) {
      // Peek the packed bit width through a transient pin: a rejected
      // candidate stays in the cache (evictable) instead of being
      // permanently warmed outside the budget. Candidates that pass are
      // warmed by AlterColumnToDictionary itself.
      TDE_ASSIGN_OR_RETURN(auto pin, col->Pin());
      const EncodedStream* stream = pin ? pin->stream.get() : col->data();
      if (stream == nullptr || stream->bits() > 15) continue;
    }
    // Only worthwhile for genuine dimensions: small domain, many rows.
    if (enc != EncodingType::kFrameOfReference &&
        (!col->metadata().cardinality_known ||
         col->metadata().cardinality * 4 > col->rows())) {
      continue;
    }
    const Status st = AlterColumnToDictionary(col);
    if (st.ok()) {
      ++converted;
    } else if (st.code() != StatusCode::kCapacityExceeded &&
               st.code() != StatusCode::kNotImplemented) {
      return st;
    }
  }
  return converted;
}

Status AlterColumnToDictionary(Column* column) {
  if (column->compression() != CompressionKind::kNone) {
    return Status::InvalidArgument(
        "column is already dictionary compressed");
  }
  // In-place transformation: a cold column must first be promoted to a
  // plain hot column (materialize, detach from the cache).
  TDE_RETURN_NOT_OK(column->Warm());
  EncodedStream* stream = column->mutable_data();
  if (stream != nullptr && stream->segmented()) {
    // Dictionary compression spans the whole column, so a segmented stream
    // first collapses to one monolithic stream (re-encoded under the same
    // encoder configuration its segments sealed with). AlterColumn is
    // already the heavyweight rebuild path, and the result — like every
    // dictionary-compressed column — is frozen against further appends.
    auto* seg = static_cast<SegmentedStream*>(stream);
    TDE_ASSIGN_OR_RETURN(
        auto flat, MaterializeMonolithic(*seg, seg->encoder_options()));
    column->set_data(std::shared_ptr<EncodedStream>(std::move(flat)));
    stream = column->mutable_data();
  }
  const bool signed_values = IsSignedType(column->type());

  if (stream->type() == EncodingType::kDictionary) {
    // Sect. 3.4.3: copy the encoding dictionary into a compression
    // dictionary; the encoding entries become (sorted, narrowed) tokens.
    TDE_ASSIGN_OR_RETURN(DictCompression dc,
                         EncodingToCompression(*stream, signed_values));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = std::move(dc.dictionary);
    dict->sorted = true;
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(dc.tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  if (stream->type() == EncodingType::kRunLength) {
    // Sect. 3.4.1/3.4.3: decompose into value and count streams, dictionary
    // the values, rebuild -> a scalar dictionary-compressed column with a
    // run-length encoded token stream, at O(runs) cost.
    TDE_ASSIGN_OR_RETURN(RleDecomposition parts, DecomposeRle(*stream));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = parts.values;
    std::sort(dict->values.begin(), dict->values.end());
    dict->values.erase(std::unique(dict->values.begin(), dict->values.end()),
                       dict->values.end());
    dict->sorted = true;
    for (Lane& v : parts.values) {
      v = static_cast<Lane>(
          std::lower_bound(dict->values.begin(), dict->values.end(), v) -
          dict->values.begin());
    }
    TDE_ASSIGN_OR_RETURN(auto tokens,
                         RebuildRle(parts, stream->width(),
                                    /*sign_extend=*/false));
    TDE_RETURN_NOT_OK(tokens->Finalize());
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  if (stream->type() == EncodingType::kFrameOfReference) {
    // Sect. 3.4.3's frame-of-reference variant: the sorted dictionary is
    // the frame envelope; some entries may not occur in the column.
    TDE_ASSIGN_OR_RETURN(DictCompression dc, ForToCompression(*stream));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = column->type();
    dict->values = std::move(dc.dictionary);
    dict->sorted = true;
    column->set_array_dict(std::move(dict));
    column->set_data(std::move(dc.tokens));
    column->set_compression(CompressionKind::kArrayDict);
    column->mutable_metadata()->cardinality_known = true;
    column->mutable_metadata()->cardinality =
        column->array_dict()->values.size();
    return Status::OK();
  }

  return Status::NotImplemented(
      "dictionary conversion requires a dictionary-, run-length- or "
      "frame-of-reference-encoded column");
}

}  // namespace tde
