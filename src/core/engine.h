#ifndef TDE_CORE_ENGINE_H_
#define TDE_CORE_ENGINE_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "src/exec/scheduler.h"
#include "src/exec/sort.h"
#include "src/observe/import_stats.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/storage/database_file.h"
#include "src/storage/pager/column_cache.h"
#include "src/textscan/text_scan.h"

namespace tde {

/// How Engine::OpenDatabase materializes a v2 file.
struct OpenDatabaseOptions {
  /// Lazy (default): columns stay cold until a query touches them, and
  /// materialized payloads live in a byte-budget LRU cache. False forces
  /// the eager v1-style load. v1 files are always eager.
  bool lazy = true;
  /// Budget of the column cache, charged in compressed (on-disk) bytes.
  uint64_t cache_budget_bytes = 256ull << 20;
};

/// Import configuration: TextScan (parsing) + FlowTable (encoding) knobs.
struct ImportOptions {
  TextScanOptions text;
  FlowTableOptions flow;
  /// Sort rows on these keys before encoding (the paper's "sorting on a
  /// preferred attribute", Sect. 5.2): expensive, but it can turn scattered
  /// columns into run-length/delta encodable ones and help filtering and
  /// aggregation downstream.
  std::vector<SortKey> sort_by;
};

/// The public facade of the engine: import flat files into encoded tables,
/// persist/load single-file databases, and execute query plans through the
/// strategic + tactical optimizers.
///
/// Quickstart:
///   Engine engine;
///   auto table = engine.ImportTextFile("data.csv", "t").value();
///   auto result = engine.Execute(
///       Plan::Scan(table)
///           .Filter(expr::Gt(expr::Col("x"), expr::Int(10)))
///           .Aggregate({"k"}, {{AggKind::kSum, "x", "total"}}));
class Engine {
 public:
  Engine() = default;

  /// Imports a flat file: TextScan (inference + parsing) feeding FlowTable
  /// (dynamic encoding + metadata extraction). The table is added to the
  /// engine's database.
  Result<std::shared_ptr<Table>> ImportTextFile(const std::string& path,
                                                const std::string& table_name,
                                                ImportOptions options = {});
  /// Same, from an in-memory buffer.
  Result<std::shared_ptr<Table>> ImportTextBuffer(std::string data,
                                                  const std::string& table_name,
                                                  ImportOptions options = {});

  /// Runs a plan through strategic optimization and tactical lowering.
  Result<QueryResult> Execute(const Plan& plan,
                              const StrategicOptions& strategic = {}) const;

  /// Parses and runs a SQL query against this engine's tables (see
  /// sql::ParseQuery for the supported grammar). An `EXPLAIN` prefix
  /// returns the optimized plan and tactical decisions as a single-column
  /// result instead of executing; `EXPLAIN ANALYZE` executes the query and
  /// returns the operator tree annotated with actual rows/blocks/time.
  ///
  /// Queries may also reference the observability virtual tables, each
  /// materialized as a snapshot at parse time:
  ///   tde_stats    metric/kind/value registry dump + per-import telemetry
  ///   tde_metrics  one row per metric, histogram percentiles as columns
  ///   tde_queries  the query journal: per-query times and counter deltas
  ///   tde_columns  one row per stored column: encoding, runs, bytes, ratio
  ///   tde_segments one row per stored segment: encoding, zone map, residency
  ///   tde_cache    column-cache residency in LRU order
  Result<QueryResult> ExecuteSql(const std::string& sql) const;

  /// ExecuteSql with explicit strategic options — the differential-testing
  /// hook: the correctness harness re-runs one statement under a matrix of
  /// kill switches (rewrites disabled one by one) and cross-checks the
  /// results against the reference interpreter.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const StrategicOptions& strategic) const;

  /// Incremental append (segmented storage's write path): appends `rows` —
  /// one ColumnVector per table column in declared order; string lanes are
  /// resolved through the vector's own heap and re-added to the column's —
  /// to an existing table. On a column's first append its current stream
  /// is adopted as sealed segment 0 (the column metadata becomes its zone
  /// map); appended values accumulate in an open tail that seals into an
  /// independently-encoded segment every TDE_SEGMENT_ROWS rows. Cold
  /// columns are warmed first (append mutates in place);
  /// dictionary-compressed columns are not appendable. Returns the table's
  /// new row count.
  Result<uint64_t> AppendRows(const std::string& table_name,
                              const Block& rows);

  Database* database() { return &db_; }
  const Database& database() const { return db_; }

  /// The shared worker pool every engine in the process executes on: all
  /// parallel operators (Exchange, ParallelRollup, parallel import) submit
  /// task groups here instead of spawning threads, so total parallelism is
  /// bounded by the pool regardless of how many queries run concurrently.
  /// Sized once from TDE_WORKERS / hardware_concurrency.
  TaskScheduler& scheduler() const { return TaskScheduler::Global(); }

  /// Persists the whole database as a single file (Sect. 2.3.3), in the
  /// paged v2 format: page-aligned checksummed column blobs behind a
  /// directory, so a later open is O(directory) and queries fault in only
  /// the columns they touch.
  Status SaveDatabase(const std::string& path) const;

  /// How OpenDatabase materializes a v2 file (OpenDatabaseOptions; aliased
  /// here for call-site brevity: Engine::OpenOptions).
  using OpenOptions = OpenDatabaseOptions;

  /// Loads a single-file database — v1 ("TDEDB001", eager) or v2
  /// ("TDEDB002", lazy by default: the open reads only the directory).
  static Result<Engine> OpenDatabase(const std::string& path,
                                     OpenOptions options = {});

  /// The column cache of a lazily opened v2 database (null otherwise).
  /// Exposes residency and lets callers retune the budget at runtime.
  pager::ColumnCache* column_cache() const { return cache_.get(); }

  /// References an external flat file (Sect. 8's future-work direction):
  /// imports it now and remembers its identity so RefreshChanged() can
  /// rebuild the table when the file changes — the repackaging cost the
  /// user is willing to pay for up-to-date data.
  Result<std::shared_ptr<Table>> AttachTextFile(const std::string& path,
                                                const std::string& table_name,
                                                ImportOptions options = {});

  /// Re-imports every attached file whose size or mtime changed. Returns
  /// the number of tables rebuilt.
  Result<int> RefreshChanged();

  /// The TDE's global optimization phase (Sect. 3.4.3): walks a table and
  /// converts scalar columns whose encodings expose a small domain
  /// (dictionary, run-length or narrow frame-of-reference) into
  /// dictionary-*compressed* columns, enabling invisible joins on them.
  /// Returns the number of columns converted.
  Result<int> OptimizeTable(const std::string& table_name);

  /// Telemetry of every import performed by this engine (one record per
  /// ImportTextFile / ImportTextBuffer / attachment refresh, in order).
  /// Empty when stats collection is disabled (observe::StatsEnabled()).
  const std::vector<observe::ImportStats>& import_stats() const {
    return import_stats_;
  }

  /// All collected telemetry as one JSON document: the global metrics
  /// registry snapshot plus this engine's per-import records.
  std::string StatsJson() const;

  /// The storage picture as one JSON document: every column's physical
  /// shape (encoding, runs, compressed vs logical bytes, residency) plus
  /// the column cache's residency set. {"columns":[...],"cache":{...}}.
  std::string StorageReportJson() const;

 private:
  struct Attachment {
    std::string path;
    std::string table_name;
    ImportOptions options;
    int64_t mtime = 0;
    int64_t size = 0;
  };

  Status ReplaceTable(std::shared_ptr<Table> table);

  Database db_;
  std::shared_ptr<pager::ColumnCache> cache_;
  std::vector<Attachment> attachments_;
  std::vector<observe::ImportStats> import_stats_;
  /// Append/query isolation: queries hold it shared for their whole run,
  /// in-place mutators (AppendRows, OptimizeTable) exclusively — so a
  /// reader observes a table either entirely before or entirely after an
  /// append, never mid-mutation. shared_ptr keeps Engine movable
  /// (OpenDatabase returns by value).
  std::shared_ptr<std::shared_mutex> exec_mu_ =
      std::make_shared<std::shared_mutex>();
};

/// The heavyweight AlterColumn transformation of Sect. 3.4.3: converts a
/// dictionary-*encoded* scalar column into a dictionary-*compressed* one
/// (array dictionary + minimal-width tokens), enabling invisible joins on
/// scalar dimensions such as dates. Run-length encoded columns take the
/// decompose/rebuild route of Sect. 3.4.1 so the result is a scalar
/// dictionary-compressed column with a run-length encoded token stream.
/// Segmented columns first collapse to one monolithic stream (re-encoded
/// under their own encoder configuration); the converted column is frozen
/// against further appends like every dictionary-compressed column.
Status AlterColumnToDictionary(Column* column);

}  // namespace tde

#endif  // TDE_CORE_ENGINE_H_
