#include "src/storage/column.h"

#include "src/encoding/streams_internal.h"

namespace tde {

uint8_t Column::TokenWidth() const {
  if (data_ == nullptr) return 8;
  switch (data_->type()) {
    case EncodingType::kDictionary:
      // The per-row data of a dictionary-encoded stream is its packed index.
      return static_cast<uint8_t>((data_->bits() + 7) / 8);
    case EncodingType::kRunLength:
      // Per-row values occupy the run value field width.
      return data_->buffer()[internal::RleStream::kValueWidthOffset];
    default:
      return data_->width();
  }
}

uint64_t Column::PhysicalSize() const {
  uint64_t n = data_ ? data_->PhysicalSize() : 0;
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

uint64_t Column::LogicalSize() const {
  uint64_t n = rows() * 8;  // values are parsed at the default 8-byte width
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

Status Column::GetLanes(uint64_t row, size_t count, Lane* out) const {
  if (data_ == nullptr) return Status::Internal("column has no data stream");
  return data_->Get(row, count, out);
}

}  // namespace tde
