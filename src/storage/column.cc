#include "src/storage/column.h"

#include "src/encoding/streams_internal.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/segment/segmented_stream.h"

namespace tde {

const char* ResidencyName(ColumnResidency r) {
  switch (r) {
    case ColumnResidency::kHot:
      return "hot";
    case ColumnResidency::kCold:
      return "cold";
    case ColumnResidency::kWarm:
      return "warm";
    case ColumnResidency::kPinned:
      return "pinned";
  }
  return "unknown";
}

Column::~Column() {
  // `cold_` is never cleared (Warm only flips `warmed_`), so a cold-born
  // column always detaches from its cache — including a payload a racing
  // Ensure installed after the warm.
  if (cold_ != nullptr && cold_->cache != nullptr) {
    cold_->cache->Forget(this);
  }
}

void Column::MakeCold(std::shared_ptr<const pager::ColdSource> src) {
  cold_ = std::move(src);
}

bool Column::cold() const {
  if (cold_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(load_mu_);
  return !warmed_;
}

bool Column::resident() const {
  if (cold_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(load_mu_);
  return warmed_ || resident_ != nullptr;
}

ColumnResidency Column::residency_state() const {
  if (cold_ == nullptr) return ColumnResidency::kHot;
  std::lock_guard<std::mutex> lock(load_mu_);
  if (warmed_) return ColumnResidency::kHot;
  if (resident_ == nullptr) return ColumnResidency::kCold;
  // The column's own reference is one; anything above it is a query pin
  // (or a load in flight, which counts as pinned for reporting purposes).
  return resident_.use_count() > 1 ? ColumnResidency::kPinned
                                   : ColumnResidency::kWarm;
}

Status Column::EnsureLoaded() const {
  if (cold_ == nullptr) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    if (warmed_) return Status::OK();
  }
  // Never hold load_mu_ across a cache call: the cache locks its own mutex
  // first and then takes load_mu_ (SetResident/TryUnload), so the reverse
  // order would deadlock.
  if (cold_->cache == nullptr) {
    return Status::Internal("cold column '" + name_ + "' has no cache");
  }
  return cold_->cache->Ensure(this);
}

Result<std::shared_ptr<const pager::LoadedColumn>> Column::Pin() const {
  if (cold_ == nullptr) {
    return {std::shared_ptr<const pager::LoadedColumn>()};
  }
  // Ensure + copy race with eviction; retry until a copy sticks. Eviction
  // between the two calls is rare (it requires another thread loading past
  // the budget in the window), so this loop terminates promptly.
  for (int attempt = 0; attempt < 64; ++attempt) {
    TDE_RETURN_NOT_OK(EnsureLoaded());
    std::lock_guard<std::mutex> lock(load_mu_);
    // A warmed column pins like a hot one: null payload, direct members.
    if (warmed_) return {std::shared_ptr<const pager::LoadedColumn>()};
    if (resident_ != nullptr) return {resident_};
  }
  return {Status::Internal("column '" + name_ +
                           "' evicted faster than it could be pinned — "
                           "cache budget too small for the working set")};
}

std::shared_ptr<const pager::LoadedColumn> Column::PinIfResident() const {
  if (cold_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(load_mu_);
  if (warmed_) return nullptr;
  return resident_;
}

void Column::SetResident(
    std::shared_ptr<const pager::LoadedColumn> payload) const {
  std::lock_guard<std::mutex> lock(load_mu_);
  resident_ = std::move(payload);
}

bool Column::TryUnload() const {
  std::unique_lock<std::mutex> lock(load_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (warmed_) {  // the column owns its data now — the entry is stale
    resident_.reset();
    return true;
  }
  if (resident_ == nullptr) return true;  // already gone — entry is stale
  if (resident_.use_count() > 1) return false;  // pinned by a query
  resident_.reset();
  return true;
}

Status Column::Warm() {
  if (cold_ == nullptr) return Status::OK();
  TDE_ASSIGN_OR_RETURN(auto pin, Pin());
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    if (pin != nullptr && !warmed_) {
      // Adopt the payload's pieces; concurrent readers see either the cold
      // view or the warmed view, never a half-swapped mix.
      data_ = pin->stream;
      heap_ = pin->heap;
      array_dict_ = pin->dict;
      warmed_ = true;
      resident_.reset();
    }
  }
  // Outside load_mu_ — see the lock-order note in EnsureLoaded.
  if (cold_->cache != nullptr) cold_->cache->Forget(this);
  return Status::OK();
}

void Column::set_data(std::shared_ptr<EncodedStream> s) {
  std::lock_guard<std::mutex> lock(load_mu_);
  data_ = std::move(s);
}

void Column::set_heap(std::shared_ptr<StringHeap> h) {
  std::lock_guard<std::mutex> lock(load_mu_);
  heap_ = std::move(h);
}

void Column::set_array_dict(std::shared_ptr<ArrayDictionary> d) {
  std::lock_guard<std::mutex> lock(load_mu_);
  array_dict_ = std::move(d);
}

const EncodedStream* Column::data() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) {
    return resident_ != nullptr ? resident_->stream.get() : nullptr;
  }
  return data_.get();
}

std::shared_ptr<EncodedStream> Column::data_ptr() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return nullptr;
  return data_;
}

bool Column::segmented_storage() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return !cold_->segments.empty();
  return data_ != nullptr && data_->segmented();
}

const StringHeap* Column::heap() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) {
    return resident_ != nullptr ? resident_->heap.get() : nullptr;
  }
  return heap_.get();
}

std::shared_ptr<StringHeap> Column::heap_ptr() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) {
    return resident_ != nullptr ? resident_->heap : nullptr;
  }
  return heap_;
}

const ArrayDictionary* Column::array_dict() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) {
    return resident_ != nullptr ? resident_->dict.get() : nullptr;
  }
  return array_dict_.get();
}

uint64_t Column::rows() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return cold_->rows;
  return data_ ? data_->size() : 0;
}

uint8_t Column::width() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return cold_->width;
  return data_ ? data_->width() : 8;
}

EncodingType Column::encoding_type() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return cold_->encoding;
  return data_ ? data_->type() : EncodingType::kUncompressed;
}

uint8_t Column::TokenWidth() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return cold_->token_width;
  if (data_ == nullptr) return 8;
  return data_->TokenWidthBytes();
}

std::vector<SegmentShape> Column::SegmentShapes() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  const EncodedStream* stream = nullptr;
  bool from_cold = false;
  if (cold_ != nullptr && !warmed_) {
    stream = resident_ != nullptr ? resident_->stream.get() : nullptr;
    from_cold = true;
  } else {
    stream = data_.get();
  }
  if (stream != nullptr && stream->segmented()) {
    return static_cast<const SegmentedStream*>(stream)->Shapes();
  }
  if (stream == nullptr && from_cold && !cold_->segments.empty()) {
    // Segmented but not materialized: directory facts only.
    std::vector<SegmentShape> out;
    out.reserve(cold_->segments.size());
    for (const pager::ColdSegment& s : cold_->segments) {
      out.push_back(s.shape);
      out.back().resident = false;
    }
    return out;
  }
  // Monolithic: one pseudo-segment covering the whole column, with the
  // column-level metadata as its zone map.
  SegmentShape s;
  if (stream != nullptr) {
    s.rows = stream->size();
    s.encoding = stream->type();
    s.width = stream->width();
    s.bits = stream->bits();
    s.token_width = stream->TokenWidthBytes();
    s.physical_bytes = stream->PhysicalSize();
    s.resident = true;
  } else if (from_cold) {
    s.rows = cold_->rows;
    s.encoding = cold_->encoding;
    s.width = cold_->width;
    s.token_width = cold_->token_width;
    s.physical_bytes = cold_->stream.length;
    s.resident = false;
  } else {
    return {};
  }
  if (s.rows == 0) return {};
  s.zone.meta = meta_;
  s.zone.null_count =
      (meta_.null_known && !meta_.has_nulls) ? 0 : int64_t{-1};
  return {s};
}

uint64_t Column::ReleaseEvictableSegments() const {
  std::unique_lock<std::mutex> lock(load_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;
  if (warmed_ || resident_ == nullptr) return 0;
  EncodedStream* stream = resident_->stream.get();
  if (stream == nullptr || !stream->segmented()) return 0;
  return static_cast<SegmentedStream*>(stream)->ReleaseColdSegments();
}

uint64_t Column::PhysicalSize() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) return cold_->CompressedBytes();
  uint64_t n = data_ ? data_->PhysicalSize() : 0;
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

uint64_t Column::LogicalSize() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  if (cold_ != nullptr && !warmed_) {
    // Directory facts only: heap blob length is the heap byte size, the
    // dictionary is 8 bytes per entry.
    return cold_->rows * 8 + (cold_->has_heap ? cold_->heap.length : 0) +
           cold_->dict_entries * 8;
  }
  uint64_t n = (data_ ? data_->size() : 0) * 8;  // default 8-byte lanes
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

Status Column::GetLanes(uint64_t row, size_t count, Lane* out) const {
  // Pin first (materializes cold columns); a null pin means the direct
  // members hold the data. Copy the stream pointer under the lock rather
  // than calling data() so a concurrent set_data cannot free it mid-read.
  TDE_ASSIGN_OR_RETURN(auto pin, Pin());
  if (pin != nullptr) return pin->stream->Get(row, count, out);
  std::shared_ptr<EncodedStream> stream;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    stream = data_;
  }
  if (stream == nullptr) {
    return Status::Internal("column has no data stream");
  }
  return stream->Get(row, count, out);
}

}  // namespace tde
