#include "src/storage/column.h"

#include "src/encoding/streams_internal.h"
#include "src/storage/pager/column_cache.h"

namespace tde {

Column::~Column() {
  if (cold_ != nullptr && cold_->cache != nullptr) {
    cold_->cache->Forget(this);
  }
}

void Column::MakeCold(std::shared_ptr<const pager::ColdSource> src) {
  cold_ = std::move(src);
}

bool Column::resident() const {
  if (cold_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_ != nullptr;
}

Status Column::EnsureLoaded() const {
  if (cold_ == nullptr) return Status::OK();
  if (cold_->cache == nullptr) {
    return Status::Internal("cold column '" + name_ + "' has no cache");
  }
  return cold_->cache->Ensure(this);
}

Result<std::shared_ptr<const pager::LoadedColumn>> Column::Pin() const {
  if (cold_ == nullptr) {
    return {std::shared_ptr<const pager::LoadedColumn>()};
  }
  // Ensure + copy race with eviction; retry until a copy sticks. Eviction
  // between the two calls is rare (it requires another thread loading past
  // the budget in the window), so this loop terminates promptly.
  for (int attempt = 0; attempt < 64; ++attempt) {
    TDE_RETURN_NOT_OK(EnsureLoaded());
    std::lock_guard<std::mutex> lock(load_mu_);
    if (resident_ != nullptr) return {resident_};
  }
  return {Status::Internal("column '" + name_ +
                           "' evicted faster than it could be pinned — "
                           "cache budget too small for the working set")};
}

std::shared_ptr<const pager::LoadedColumn> Column::PinIfResident() const {
  if (cold_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_;
}

void Column::SetResident(
    std::shared_ptr<const pager::LoadedColumn> payload) const {
  std::lock_guard<std::mutex> lock(load_mu_);
  resident_ = std::move(payload);
}

bool Column::TryUnload() const {
  std::unique_lock<std::mutex> lock(load_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (resident_ == nullptr) return true;  // already gone — entry is stale
  if (resident_.use_count() > 1) return false;  // pinned by a query
  resident_.reset();
  return true;
}

Status Column::Warm() {
  if (cold_ == nullptr) return Status::OK();
  TDE_ASSIGN_OR_RETURN(auto pin, Pin());
  // Adopt the payload's pieces directly; once the cache entry is forgotten
  // this column is their sole owner.
  data_ = pin->stream;
  heap_ = pin->heap;
  array_dict_ = pin->dict;
  auto cold = std::move(cold_);
  SetResident(nullptr);
  if (cold->cache != nullptr) cold->cache->Forget(this);
  return Status::OK();
}

const EncodedStream* Column::data() const {
  if (cold_ == nullptr) return data_.get();
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_ != nullptr ? resident_->stream.get() : nullptr;
}

const StringHeap* Column::heap() const {
  if (cold_ == nullptr) return heap_.get();
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_ != nullptr ? resident_->heap.get() : nullptr;
}

std::shared_ptr<StringHeap> Column::heap_ptr() const {
  if (cold_ == nullptr) return heap_;
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_ != nullptr ? resident_->heap : nullptr;
}

const ArrayDictionary* Column::array_dict() const {
  if (cold_ == nullptr) return array_dict_.get();
  std::lock_guard<std::mutex> lock(load_mu_);
  return resident_ != nullptr ? resident_->dict.get() : nullptr;
}

uint64_t Column::rows() const {
  if (cold_ != nullptr) return cold_->rows;
  return data_ ? data_->size() : 0;
}

uint8_t Column::width() const {
  if (cold_ != nullptr) return cold_->width;
  return data_ ? data_->width() : 8;
}

EncodingType Column::encoding_type() const {
  if (cold_ != nullptr) return cold_->encoding;
  return data_ ? data_->type() : EncodingType::kUncompressed;
}

uint8_t Column::TokenWidth() const {
  if (cold_ != nullptr) return cold_->token_width;
  if (data_ == nullptr) return 8;
  switch (data_->type()) {
    case EncodingType::kDictionary:
      // The per-row data of a dictionary-encoded stream is its packed index.
      return static_cast<uint8_t>((data_->bits() + 7) / 8);
    case EncodingType::kRunLength:
      // Per-row values occupy the run value field width.
      return data_->buffer()[internal::RleStream::kValueWidthOffset];
    default:
      return data_->width();
  }
}

uint64_t Column::PhysicalSize() const {
  if (cold_ != nullptr) return cold_->CompressedBytes();
  uint64_t n = data_ ? data_->PhysicalSize() : 0;
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

uint64_t Column::LogicalSize() const {
  if (cold_ != nullptr) {
    // Directory facts only: heap blob length is the heap byte size, the
    // dictionary is 8 bytes per entry.
    return cold_->rows * 8 + (cold_->has_heap ? cold_->heap.length : 0) +
           cold_->dict_entries * 8;
  }
  uint64_t n = rows() * 8;  // values are parsed at the default 8-byte width
  if (heap_) n += heap_->byte_size();
  if (array_dict_) n += array_dict_->values.size() * 8;
  return n;
}

Status Column::GetLanes(uint64_t row, size_t count, Lane* out) const {
  if (cold_ != nullptr) {
    TDE_ASSIGN_OR_RETURN(auto pin, Pin());
    return pin->stream->Get(row, count, out);
  }
  if (data_ == nullptr) return Status::Internal("column has no data stream");
  return data_->Get(row, count, out);
}

}  // namespace tde
