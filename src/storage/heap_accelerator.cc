#include "src/storage/heap_accelerator.h"

namespace tde {

HeapAccelerator::HeapAccelerator(StringHeap* heap, uint64_t give_up_threshold)
    : heap_(heap), threshold_(give_up_threshold) {
  slots_.resize(1u << 10);
  mask_ = slots_.size() - 1;
}

Lane HeapAccelerator::Add(std::string_view s) {
  Lane token;
  if (!active_) {
    token = heap_->Add(s);
  } else {
    const uint64_t h = CollationHash(Collation::kBinary, s);
    token = Probe(s, h);
    if (distinct_ > threshold_) {
      // Past the threshold hashing stops paying for itself (Sect. 5.1.4).
      active_ = false;
      slots_.clear();
      slots_.shrink_to_fit();
    }
  }
  if (have_prev_ && arrived_sorted_) {
    if (Collate(heap_->collation(), heap_->Get(prev_token_), heap_->Get(token)) >
        0) {
      arrived_sorted_ = false;
    }
  }
  prev_token_ = token;
  have_prev_ = true;
  return token;
}

Lane HeapAccelerator::Probe(std::string_view s, uint64_t hash) {
  if ((distinct_ + 1) * 2 > slots_.size()) Grow();
  uint64_t idx = hash & mask_;
  while (slots_[idx].used) {
    if (slots_[idx].hash == hash && heap_->Get(slots_[idx].token) == s) {
      return slots_[idx].token;
    }
    idx = (idx + 1) & mask_;
  }
  const Lane token = heap_->Add(s);
  slots_[idx] = {token, hash, true};
  ++distinct_;
  return token;
}

void HeapAccelerator::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (!s.used) continue;
    uint64_t idx = s.hash & mask_;
    while (slots_[idx].used) idx = (idx + 1) & mask_;
    slots_[idx] = s;
  }
}

}  // namespace tde
