#include "src/storage/string_heap.h"

#include <cstring>

namespace tde {

Lane StringHeap::Add(std::string_view s) {
  const Lane token = static_cast<Lane>(buf_.size());
  const uint32_t len = static_cast<uint32_t>(s.size());
  const size_t old = buf_.size();
  buf_.resize(old + 4 + s.size());
  std::memcpy(buf_.data() + old, &len, 4);
  std::memcpy(buf_.data() + old + 4, s.data(), s.size());
  ++entries_;
  return token;
}

std::string_view StringHeap::Get(Lane token) const {
  const uint64_t off = static_cast<uint64_t>(token);
  uint32_t len = 0;
  std::memcpy(&len, buf_.data() + off, 4);
  return std::string_view(
      reinterpret_cast<const char*>(buf_.data() + off + 4), len);
}

int StringHeap::CompareTokens(Lane a, Lane b) const {
  if (sorted_) {
    // Element order equals collation order: tokens compare directly.
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  return Collate(collation_, Get(a), Get(b));
}

std::vector<Lane> StringHeap::AllTokens() const {
  std::vector<Lane> tokens;
  tokens.reserve(entries_);
  uint64_t off = 0;
  while (off < buf_.size()) {
    tokens.push_back(static_cast<Lane>(off));
    uint32_t len = 0;
    std::memcpy(&len, buf_.data() + off, 4);
    off += 4 + len;
  }
  return tokens;
}

StringHeap StringHeap::FromParts(std::vector<uint8_t> buf, uint64_t entries,
                                 bool sorted, Collation collation) {
  StringHeap h(collation);
  h.buf_ = std::move(buf);
  h.entries_ = entries;
  h.sorted_ = sorted;
  return h;
}

}  // namespace tde
