#ifndef TDE_STORAGE_TABLE_H_
#define TDE_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/column.h"
#include "src/storage/schema.h"

namespace tde {

/// A read-only table: a set of independently compressed/encoded columns of
/// equal row count.
class Table {
 public:
  explicit Table(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  size_t num_columns() const { return columns_.size(); }
  uint64_t rows() const {
    return columns_.empty() ? 0 : columns_[0]->rows();
  }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column* mutable_column(size_t i) { return columns_[i].get(); }
  std::shared_ptr<Column> column_ptr(size_t i) const { return columns_[i]; }

  void AddColumn(std::shared_ptr<Column> c) { columns_.push_back(std::move(c)); }

  Result<size_t> ColumnIndex(const std::string& name) const;
  Result<std::shared_ptr<Column>> ColumnByName(const std::string& name) const;

  Schema GetSchema() const;

  /// Total serialized bytes of all columns.
  uint64_t PhysicalSize() const;
  /// Total un-encoded bytes of all columns.
  uint64_t LogicalSize() const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<Column>> columns_;
};

}  // namespace tde

#endif  // TDE_STORAGE_TABLE_H_
