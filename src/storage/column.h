#ifndef TDE_STORAGE_COLUMN_H_
#define TDE_STORAGE_COLUMN_H_

#include <memory>
#include <string>

#include "src/encoding/dynamic_encoder.h"
#include "src/encoding/metadata.h"
#include "src/encoding/stream.h"
#include "src/storage/dictionary.h"
#include "src/storage/string_heap.h"

namespace tde {

/// Column compression (Sect. 2.3.2) — distinct from *encoding*: traditional
/// dictionary compression with a per-column dictionary of fixed width
/// (array) or variable width (heap) data. The main data column is always
/// fixed width: uncompressed scalars, indexes into the array dictionary, or
/// offsets into the heap.
enum class CompressionKind : uint8_t {
  kNone = 0,       // lanes are the values
  kHeap = 1,       // lanes are byte offsets into a StringHeap
  kArrayDict = 2,  // lanes are indexes into an ArrayDictionary
};

/// A stored column: a fixed-width encoded stream, optional dictionary
/// (array or heap), and the metadata extracted while it was built.
class Column {
 public:
  Column(std::string name, TypeId type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  TypeId type() const { return type_; }

  CompressionKind compression() const { return compression_; }
  void set_compression(CompressionKind k) { compression_ = k; }

  const EncodedStream* data() const { return data_.get(); }
  EncodedStream* mutable_data() { return data_.get(); }
  void set_data(std::unique_ptr<EncodedStream> s) { data_ = std::move(s); }

  const StringHeap* heap() const { return heap_.get(); }
  StringHeap* mutable_heap() { return heap_.get(); }
  std::shared_ptr<StringHeap> heap_ptr() const { return heap_; }
  void set_heap(std::shared_ptr<StringHeap> h) { heap_ = std::move(h); }

  const ArrayDictionary* array_dict() const { return array_dict_.get(); }
  void set_array_dict(std::shared_ptr<ArrayDictionary> d) {
    array_dict_ = std::move(d);
  }

  const ColumnMetadata& metadata() const { return meta_; }
  ColumnMetadata* mutable_metadata() { return &meta_; }

  uint64_t rows() const { return data_ ? data_->size() : 0; }

  /// Physical element width of the main stream.
  uint8_t width() const { return data_ ? data_->width() : 8; }

  /// Effective per-row token width in bytes: for dictionary-encoded
  /// streams the packed index width (what Fig. 8/9 report), otherwise the
  /// element width.
  uint8_t TokenWidth() const;

  /// On-disk bytes: stream + heap + array dictionary.
  uint64_t PhysicalSize() const;
  /// Un-encoded bytes: rows * width (+ heap bytes for string columns).
  uint64_t LogicalSize() const;

  /// Decodes lanes [row, row+count). For string columns, lanes are heap
  /// tokens; for array-dict columns, dictionary indexes.
  Status GetLanes(uint64_t row, size_t count, Lane* out) const;

  /// Resolves a heap token (compression() must be kHeap).
  std::string_view GetString(Lane token) const { return heap_->Get(token); }

  /// Number of mid-stream encoding changes during the build (Sect. 3.2).
  int encoding_changes() const { return encoding_changes_; }
  void set_encoding_changes(int n) { encoding_changes_ = n; }

 private:
  std::string name_;
  TypeId type_;
  CompressionKind compression_ = CompressionKind::kNone;
  std::unique_ptr<EncodedStream> data_;
  std::shared_ptr<StringHeap> heap_;
  std::shared_ptr<ArrayDictionary> array_dict_;
  ColumnMetadata meta_;
  int encoding_changes_ = 0;
};

}  // namespace tde

#endif  // TDE_STORAGE_COLUMN_H_
