#ifndef TDE_STORAGE_COLUMN_H_
#define TDE_STORAGE_COLUMN_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/encoding/dynamic_encoder.h"
#include "src/encoding/metadata.h"
#include "src/encoding/stream.h"
#include "src/storage/dictionary.h"
#include "src/storage/pager/pager_types.h"
#include "src/storage/string_heap.h"

namespace tde {

/// Column compression (Sect. 2.3.2) — distinct from *encoding*: traditional
/// dictionary compression with a per-column dictionary of fixed width
/// (array) or variable width (heap) data. The main data column is always
/// fixed width: uncompressed scalars, indexes into the array dictionary, or
/// offsets into the heap.
enum class CompressionKind : uint8_t {
  kNone = 0,       // lanes are the values
  kHeap = 1,       // lanes are byte offsets into a StringHeap
  kArrayDict = 2,  // lanes are indexes into an ArrayDictionary
};

/// Pager residency of a column's payload, as reported by introspection:
/// hot columns own their data directly; cold ones are either unloaded
/// (kCold), cached and evictable (kWarm), or cached and held by at least
/// one query pin (kPinned).
enum class ColumnResidency : uint8_t { kHot, kCold, kWarm, kPinned };

const char* ResidencyName(ColumnResidency r);

/// A stored column: a fixed-width encoded stream, optional dictionary
/// (array or heap), and the metadata extracted while it was built.
///
/// A column is either *hot* (built in memory or eagerly deserialized — the
/// stream/heap/dictionary members are populated directly) or *cold* (opened
/// from a v2 database file: only directory facts are resident and the data
/// blobs are materialized through the ColumnCache on first touch, and may
/// be evicted again under budget pressure). Everything the planner consults
/// — rows, widths, encoding type, metadata, physical/logical size — answers
/// from directory facts without faulting data in.
///
/// Thread-safety: every accessor and mutator that touches the stream/heap/
/// dictionary shared_ptrs or the cold residency state synchronizes on an
/// internal mutex, so readers racing a Warm()/set_data() never observe a
/// torn pointer. Raw pointers returned by data()/heap()/array_dict() on a
/// cold column are only guaranteed stable while the caller holds a Pin —
/// the scan operators pin for the duration of a query.
class Column {
 public:
  Column(std::string name, TypeId type)
      : name_(std::move(name)), type_(type) {}

  ~Column();

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  TypeId type() const { return type_; }

  CompressionKind compression() const { return compression_; }
  void set_compression(CompressionKind k) { compression_ = k; }

  const EncodedStream* data() const;
  EncodedStream* mutable_data() { return data_.get(); }
  void set_data(std::shared_ptr<EncodedStream> s);
  /// Shared reference to the hot stream (null for unwarmed cold columns).
  /// Lets AppendRows adopt the current stream as a sealed segment.
  std::shared_ptr<EncodedStream> data_ptr() const;

  const StringHeap* heap() const;
  StringHeap* mutable_heap() { return heap_.get(); }
  std::shared_ptr<StringHeap> heap_ptr() const;
  void set_heap(std::shared_ptr<StringHeap> h);

  const ArrayDictionary* array_dict() const;
  void set_array_dict(std::shared_ptr<ArrayDictionary> d);

  const ColumnMetadata& metadata() const { return meta_; }
  ColumnMetadata* mutable_metadata() { return &meta_; }

  uint64_t rows() const;

  /// Physical element width of the main stream.
  uint8_t width() const;

  /// Effective per-row token width in bytes: for dictionary-encoded
  /// streams the packed index width (what Fig. 8/9 report), otherwise the
  /// element width.
  uint8_t TokenWidth() const;

  /// Per-segment shapes (position, encoding, zone map, residency) for the
  /// planner's segment pruning and for introspection. Monolithic columns
  /// report one pseudo-segment covering every row. Never faults data in.
  std::vector<SegmentShape> SegmentShapes() const;

  /// True when the column's storage is genuinely segmented — from
  /// directory facts for cold columns; never faults data in.
  bool segmented_storage() const;

  /// Drops faulted-in payloads of unpinned cold segments (segmented cold
  /// columns only) and returns the bytes freed. Called by the column cache
  /// when whole-column eviction fails because the column itself is pinned.
  uint64_t ReleaseEvictableSegments() const;

  /// Encoding algorithm of the main stream — from the directory for cold
  /// columns, so the optimizers can consult it without faulting data in.
  EncodingType encoding_type() const;

  /// On-disk bytes: stream + heap + array dictionary.
  uint64_t PhysicalSize() const;
  /// Un-encoded bytes: rows * width (+ heap bytes for string columns).
  uint64_t LogicalSize() const;

  /// Decodes lanes [row, row+count). For string columns, lanes are heap
  /// tokens; for array-dict columns, dictionary indexes. Cold columns
  /// materialize (and self-pin for the duration of the call).
  Status GetLanes(uint64_t row, size_t count, Lane* out) const;

  /// Resolves a heap token (compression() must be kHeap).
  std::string_view GetString(Lane token) const { return heap()->Get(token); }

  /// Number of mid-stream encoding changes during the build (Sect. 3.2).
  int encoding_changes() const { return encoding_changes_; }
  void set_encoding_changes(int n) { encoding_changes_ = n; }

  // --- Cold (paged) state -------------------------------------------------

  /// Turns this column cold: drops nothing (the column must be empty) and
  /// records where its blobs live. Called by the v2 open path.
  void MakeCold(std::shared_ptr<const pager::ColdSource> src);

  bool cold() const;
  /// Cold column whose payload is currently materialized (hot columns are
  /// trivially resident).
  bool resident() const;
  /// Residency state for introspection; a single lock acquisition, never
  /// faults data in.
  ColumnResidency residency_state() const;
  const pager::ColdSource* cold_source() const { return cold_.get(); }

  /// Materializes a cold column's payload through the cache (no-op when hot
  /// or already resident).
  Status EnsureLoaded() const;

  /// Materializes (if needed) and returns a shared reference to the
  /// payload, preventing eviction while the reference is held. Returns a
  /// null payload for hot columns — callers treat null as "use the direct
  /// members, which never move".
  Result<std::shared_ptr<const pager::LoadedColumn>> Pin() const;

  /// Pin without materializing: null if cold and not resident.
  std::shared_ptr<const pager::LoadedColumn> PinIfResident() const;

  /// Promotes a cold column to a plain hot column (materializes, adopts the
  /// shared payload as the direct members, detaches from the cache). Used
  /// by eager v2 reads and by in-place column transformations. Safe to call
  /// while other threads read the column: the view swaps atomically under
  /// the internal mutex. Idempotent.
  Status Warm();

  /// Cache internals: installs a freshly materialized payload / attempts to
  /// drop an unpinned one. TryUnload returns false when the payload is
  /// pinned (or the column is briefly locked by a concurrent loader).
  void SetResident(std::shared_ptr<const pager::LoadedColumn> payload) const;
  bool TryUnload() const;

 private:
  std::string name_;
  TypeId type_;
  CompressionKind compression_ = CompressionKind::kNone;
  std::shared_ptr<EncodedStream> data_;
  std::shared_ptr<StringHeap> heap_;
  std::shared_ptr<ArrayDictionary> array_dict_;
  ColumnMetadata meta_;
  int encoding_changes_ = 0;

  // Cold state. `cold_` is set once before the column is shared and then
  // immutable for the column's lifetime — Warm() flips `warmed_` instead of
  // clearing it, so a ColdSource pointer handed to the cache never dangles.
  // `resident_` and `warmed_` swap under `load_mu_`.
  std::shared_ptr<const pager::ColdSource> cold_;
  mutable std::mutex load_mu_;
  mutable std::shared_ptr<const pager::LoadedColumn> resident_;
  mutable bool warmed_ = false;
};

}  // namespace tde

#endif  // TDE_STORAGE_COLUMN_H_
