#include "src/storage/database_file.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <span>

#include "src/storage/pager/format.h"
#include "src/storage/segment/segment_builder.h"
#include "src/storage/segment/segmented_stream.h"

namespace tde {

namespace {

constexpr char kMagic[8] = {'T', 'D', 'E', 'D', 'B', '0', '0', '1'};

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    U64(b.size());
    Raw(b.data(), b.size());
  }
  void Raw(const void* p, size_t n) {
    const size_t old = out_->size();
    out_->resize(old + n);
    std::memcpy(out_->data() + old, p, n);
  }

 private:
  std::vector<uint8_t>* out_;
};

// All bounds checks are written in subtraction form (`n > size - pos`,
// with pos <= size as invariant) so a hostile length field near UINT64_MAX
// cannot wrap the addition and sneak past the check.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}
  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status I64(int64_t* v) { return Raw(v, 8); }
  Status Str(std::string* s) {
    uint32_t n = 0;
    TDE_RETURN_NOT_OK(U32(&n));
    if (n > in_.size() - pos_) return Corrupt();
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }
  Status Bytes(std::vector<uint8_t>* b) {
    uint64_t n = 0;
    TDE_RETURN_NOT_OK(U64(&n));
    if (n > in_.size() - pos_) return Corrupt();
    b->assign(in_.begin() + static_cast<ptrdiff_t>(pos_),
              in_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return Status::OK();
  }
  Status Raw(void* p, size_t n) {
    if (n > in_.size() - pos_) return Corrupt();
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  /// Guards allocations sized from untrusted length fields.
  bool CanRead(uint64_t n) const { return n <= in_.size() - pos_; }
  static Status Corrupt() {
    return Status::IOError("truncated or corrupt database file");
  }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

void WriteMetadata(Writer* w, const ColumnMetadata& m) {
  uint8_t flags = 0;
  if (m.sorted) flags |= 1;
  if (m.dense) flags |= 2;
  if (m.unique) flags |= 4;
  if (m.min_max_known) flags |= 8;
  if (m.cardinality_known) flags |= 16;
  if (m.null_known) flags |= 32;
  if (m.has_nulls) flags |= 64;
  w->U8(flags);
  w->I64(m.min_value);
  w->I64(m.max_value);
  w->U64(m.cardinality);
}

Status ReadMetadata(Reader* r, ColumnMetadata* m) {
  uint8_t flags = 0;
  TDE_RETURN_NOT_OK(r->U8(&flags));
  m->sorted = flags & 1;
  m->dense = flags & 2;
  m->unique = flags & 4;
  m->min_max_known = flags & 8;
  m->cardinality_known = flags & 16;
  m->null_known = flags & 32;
  m->has_nulls = flags & 64;
  TDE_RETURN_NOT_OK(r->I64(&m->min_value));
  TDE_RETURN_NOT_OK(r->I64(&m->max_value));
  TDE_RETURN_NOT_OK(r->U64(&m->cardinality));
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<Table>> Database::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tables_) {
    if (t->name() == name) return t;
  }
  return {Status::NotFound("no table named '" + name + "'")};
}

Status Database::ReplaceTable(std::shared_ptr<Table> t) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& existing : tables_) {
    if (existing->name() == t->name()) {
      existing = std::move(t);
      return Status::OK();
    }
  }
  return Status::NotFound("no table named '" + t->name() + "' to replace");
}

uint64_t Database::PhysicalSize() const {
  uint64_t n = 0;
  for (const auto& t : tables()) n += t->PhysicalSize();
  return n;
}

uint64_t Database::LogicalSize() const {
  uint64_t n = 0;
  for (const auto& t : tables()) n += t->LogicalSize();
  return n;
}

Status SerializeDatabase(const Database& db, std::vector<uint8_t>* out) {
  out->clear();
  Writer w(out);
  w.Raw(kMagic, sizeof(kMagic));
  const auto tables = db.tables();
  w.U32(static_cast<uint32_t>(tables.size()));
  for (const auto& t : tables) {
    w.Str(t->name());
    w.U32(static_cast<uint32_t>(t->num_columns()));
    for (size_t i = 0; i < t->num_columns(); ++i) {
      const Column& c = t->column(i);
      // Cold columns must be materialized (and held) for the copy-through.
      TDE_ASSIGN_OR_RETURN(auto pin, c.Pin());
      const EncodedStream* stream = c.data();
      if (stream == nullptr) {
        return Status::Internal("column '" + t->name() + "." + c.name() +
                                "' has no data stream to serialize");
      }
      // The v1 format stores one stream blob per column; segmented columns
      // collapse back to a monolithic re-encode under the same encoder
      // configuration their segments sealed with.
      std::unique_ptr<EncodedStream> flat;
      if (stream->segmented()) {
        const auto* seg = static_cast<const SegmentedStream*>(stream);
        TDE_ASSIGN_OR_RETURN(
            flat, MaterializeMonolithic(*stream, seg->encoder_options()));
        stream = flat.get();
      }
      w.Str(c.name());
      w.U8(static_cast<uint8_t>(c.type()));
      w.U8(static_cast<uint8_t>(c.compression()));
      WriteMetadata(&w, c.metadata());
      w.U32(static_cast<uint32_t>(c.encoding_changes()));
      w.Bytes(stream->buffer());
      if (c.compression() == CompressionKind::kHeap) {
        const StringHeap* h = c.heap();
        if (h == nullptr) {
          return Status::Internal("heap column '" + t->name() + "." +
                                  c.name() + "' has no heap to serialize");
        }
        w.Bytes(h->buffer());
        w.U64(h->entry_count());
        w.U8(h->sorted() ? 1 : 0);
        w.U8(static_cast<uint8_t>(h->collation()));
      } else if (c.compression() == CompressionKind::kArrayDict) {
        const ArrayDictionary* d = c.array_dict();
        if (d == nullptr) {
          return Status::Internal("dictionary column '" + t->name() + "." +
                                  c.name() + "' has no dictionary");
        }
        w.U8(static_cast<uint8_t>(d->type));
        w.U8(d->sorted ? 1 : 0);
        w.U64(d->values.size());
        w.Raw(d->values.data(), d->values.size() * sizeof(Lane));
      }
    }
  }
  return Status::OK();
}

Result<Database> DeserializeDatabase(const std::vector<uint8_t>& bytes) {
  if (pager::IsV2Magic(bytes.data(), bytes.size())) {
    return pager::ReadDatabaseV2Eager(
        std::span<const uint8_t>(bytes.data(), bytes.size()));
  }
  Reader r(bytes);
  char magic[8];
  TDE_RETURN_NOT_OK(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return {Status::IOError("not a TDE database file")};
  }
  Database db;
  uint32_t tables = 0;
  TDE_RETURN_NOT_OK(r.U32(&tables));
  for (uint32_t ti = 0; ti < tables; ++ti) {
    std::string tname;
    TDE_RETURN_NOT_OK(r.Str(&tname));
    auto table = std::make_shared<Table>(tname);
    uint32_t cols;
    TDE_RETURN_NOT_OK(r.U32(&cols));
    for (uint32_t ci = 0; ci < cols; ++ci) {
      std::string cname;
      TDE_RETURN_NOT_OK(r.Str(&cname));
      uint8_t type_raw = 0, comp_raw = 0;
      TDE_RETURN_NOT_OK(r.U8(&type_raw));
      TDE_RETURN_NOT_OK(r.U8(&comp_raw));
      if (type_raw >= kNumTypes) {
        return {Status::IOError("bad type byte for column '" + cname + "'")};
      }
      if (comp_raw > static_cast<uint8_t>(CompressionKind::kArrayDict)) {
        return {Status::IOError("bad compression byte for column '" + cname +
                                "'")};
      }
      auto col = std::make_shared<Column>(cname, static_cast<TypeId>(type_raw));
      col->set_compression(static_cast<CompressionKind>(comp_raw));
      TDE_RETURN_NOT_OK(ReadMetadata(&r, col->mutable_metadata()));
      uint32_t changes = 0;
      TDE_RETURN_NOT_OK(r.U32(&changes));
      col->set_encoding_changes(static_cast<int>(changes));
      std::vector<uint8_t> stream_bytes;
      TDE_RETURN_NOT_OK(r.Bytes(&stream_bytes));
      TDE_ASSIGN_OR_RETURN(auto stream,
                           EncodedStream::Open(std::move(stream_bytes)));
      col->set_data(std::move(stream));
      if (col->compression() == CompressionKind::kHeap) {
        std::vector<uint8_t> heap_bytes;
        uint64_t entries;
        uint8_t sorted, collation;
        TDE_RETURN_NOT_OK(r.Bytes(&heap_bytes));
        TDE_RETURN_NOT_OK(r.U64(&entries));
        TDE_RETURN_NOT_OK(r.U8(&sorted));
        TDE_RETURN_NOT_OK(r.U8(&collation));
        if (collation > static_cast<uint8_t>(Collation::kLocale)) {
          return {Status::IOError("bad collation byte for column '" + cname +
                                  "'")};
        }
        // Each heap entry is at least its 4-byte length prefix.
        if (entries > heap_bytes.size() / 4) return Reader::Corrupt();
        col->set_heap(std::make_shared<StringHeap>(StringHeap::FromParts(
            std::move(heap_bytes), entries, sorted != 0,
            static_cast<Collation>(collation))));
      } else if (col->compression() == CompressionKind::kArrayDict) {
        auto dict = std::make_shared<ArrayDictionary>();
        uint8_t dtype, sorted;
        uint64_t n = 0;
        TDE_RETURN_NOT_OK(r.U8(&dtype));
        TDE_RETURN_NOT_OK(r.U8(&sorted));
        TDE_RETURN_NOT_OK(r.U64(&n));
        if (dtype >= kNumTypes) {
          return {Status::IOError("bad dictionary type for column '" + cname +
                                  "'")};
        }
        dict->type = static_cast<TypeId>(dtype);
        dict->sorted = sorted != 0;
        // `n * sizeof(Lane)` could wrap; divide the remaining bytes instead.
        if (n > std::numeric_limits<uint64_t>::max() / sizeof(Lane) ||
            !r.CanRead(n * sizeof(Lane))) {
          return Reader::Corrupt();
        }
        dict->values.resize(n);
        TDE_RETURN_NOT_OK(r.Raw(dict->values.data(), n * sizeof(Lane)));
        col->set_array_dict(std::move(dict));
      }
      table->AddColumn(std::move(col));
    }
    db.AddTable(std::move(table));
  }
  return db;
}

Status WriteDatabase(const Database& db, const std::string& path) {
  std::vector<uint8_t> bytes;
  TDE_RETURN_NOT_OK(SerializeDatabase(db, &bytes));
  // Temp file + rename: atomic replace, and a lazy engine reading from
  // `path` keeps its fd/mmap on the old inode (see WriteFileAtomic).
  return pager::WriteFileAtomic(path, bytes);
}

Result<Database> ReadDatabase(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {Status::IOError("cannot open '" + path + "'")};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return {Status::IOError("short read from '" + path + "'")};
  }
  return DeserializeDatabase(bytes);
}

}  // namespace tde
