#include "src/storage/pager/crc32c.h"

#include <array>

namespace tde {
namespace pager {

namespace {

// Slicing-by-4: four derived tables, built once at first use.
struct Tables {
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tb{};
  constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tb.t[1][i] = (tb.t[0][i] >> 8) ^ tb.t[0][tb.t[0][i] & 0xFF];
    tb.t[2][i] = (tb.t[1][i] >> 8) ^ tb.t[0][tb.t[1][i] & 0xFF];
    tb.t[3][i] = (tb.t[2][i] >> 8) ^ tb.t[0][tb.t[2][i] & 0xFF];
  }
  return tb;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed) {
  static const Tables kTables = BuildTables();
  const auto& t = kTables.t;
  uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    data += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *data++) & 0xFF];
  }
  return ~crc;
}

}  // namespace pager
}  // namespace tde
