#include "src/storage/pager/file_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tde {
namespace pager {

namespace {

bool MmapDisabled() {
  const char* e = std::getenv("TDE_NO_MMAP");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

}  // namespace

FileReader::~FileReader() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<size_t>(size_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::shared_ptr<FileReader>> FileReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return {Status::IOError("cannot open '" + path +
                            "': " + std::strerror(errno))};
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return {Status::IOError("cannot stat '" + path +
                            "': " + std::strerror(err))};
  }
  auto r = std::shared_ptr<FileReader>(new FileReader());
  r->fd_ = fd;
  r->size_ = static_cast<uint64_t>(st.st_size);
  r->path_ = path;
  if (r->size_ > 0 && !MmapDisabled()) {
    void* map = ::mmap(nullptr, static_cast<size_t>(r->size_), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      r->map_ = map;
      // Column access is directory-directed, not sequential.
      (void)::madvise(map, static_cast<size_t>(r->size_), MADV_RANDOM);
    }
    // mmap failure is not fatal: fall through to the pread path.
  }
  return r;
}

Result<std::span<const uint8_t>> FileReader::Read(
    uint64_t offset, uint64_t length, std::vector<uint8_t>* scratch) const {
  if (length > size_ || offset > size_ - length) {
    return {Status::IOError("read past end of '" + path_ + "' (offset " +
                            std::to_string(offset) + ", length " +
                            std::to_string(length) + ", file size " +
                            std::to_string(size_) + ")")};
  }
  if (map_ != nullptr) {
    return std::span<const uint8_t>(
        static_cast<const uint8_t*>(map_) + offset,
        static_cast<size_t>(length));
  }
  if (scratch == nullptr) {
    return {Status::Internal("pread fallback requires a scratch buffer")};
  }
  scratch->resize(static_cast<size_t>(length));
  uint64_t done = 0;
  while (done < length) {
    const ssize_t n =
        ::pread(fd_, scratch->data() + done, static_cast<size_t>(length - done),
                static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return {Status::IOError("pread '" + path_ +
                              "' failed: " + std::strerror(errno))};
    }
    if (n == 0) {
      return {Status::IOError("unexpected EOF in '" + path_ + "'")};
    }
    done += static_cast<uint64_t>(n);
  }
  return std::span<const uint8_t>(scratch->data(), scratch->size());
}

}  // namespace pager
}  // namespace tde
