#ifndef TDE_STORAGE_PAGER_CRC32C_H_
#define TDE_STORAGE_PAGER_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tde {
namespace pager {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected). Software
/// table-driven implementation — every column blob in a v2 database file
/// carries its checksum so corruption is detected at materialization time,
/// before any decode touches the bytes.
uint32_t Crc32c(const uint8_t* data, size_t n, uint32_t seed = 0);

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_CRC32C_H_
