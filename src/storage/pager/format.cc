#include "src/storage/pager/format.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/storage/column.h"
#include "src/storage/pager/column_cache.h"
#include "src/storage/pager/crc32c.h"
#include "src/storage/pager/file_reader.h"
#include "src/storage/segment/segmented_stream.h"
#include "src/storage/table.h"

namespace tde {
namespace pager {

namespace {

// Header byte layout (all little-endian):
//   [0,8) magic   [8,12) version   [12,16) page_size
//   [16,24) dir_offset   [24,32) dir_length   [32,36) dir_crc32c
//   [36,40) reserved   [40,48) file_size   [48,56) reserved
//   [56,60) header_crc32c over [0,56)   [60,64) reserved
constexpr size_t kVersionOff = 8;
constexpr size_t kPageSizeOff = 12;
constexpr size_t kDirOffsetOff = 16;
constexpr size_t kDirLengthOff = 24;
constexpr size_t kDirCrcOff = 32;
constexpr size_t kFileSizeOff = 40;
constexpr size_t kHeaderCrcOff = 56;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool ValidPageSize(uint32_t ps) {
  return ps >= 512 && ps <= (1u << 20) && (ps & (ps - 1)) == 0;
}

/// Little-endian append-only writer for the directory.
class DirWriter {
 public:
  explicit DirWriter(std::vector<uint8_t>* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Blob(const BlobRef& b) {
    U64(b.offset);
    U64(b.length);
    U32(b.crc32c);
  }
  void Raw(const void* p, size_t n) {
    const size_t old = out_->size();
    out_->resize(old + n);
    std::memcpy(out_->data() + old, p, n);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian reader over the directory span. Every read
/// verifies there is room; a short or hostile directory yields IOError,
/// never an out-of-bounds access.
class DirReader {
 public:
  explicit DirReader(std::span<const uint8_t> in) : in_(in) {}
  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status I64(int64_t* v) { return Raw(v, 8); }
  Status Str(std::string* s) {
    uint32_t n;
    TDE_RETURN_NOT_OK(U32(&n));
    if (n > in_.size() - pos_) return Corrupt("name");
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }
  Status Blob(BlobRef* b) {
    TDE_RETURN_NOT_OK(U64(&b->offset));
    TDE_RETURN_NOT_OK(U64(&b->length));
    return U32(&b->crc32c);
  }
  Status Raw(void* p, size_t n) {
    if (n > in_.size() - pos_) return Corrupt("field");
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  bool AtEnd() const { return pos_ == in_.size(); }
  static Status Corrupt(const char* what) {
    return Status::IOError(std::string("truncated or corrupt v2 directory (") +
                           what + ")");
  }

 private:
  std::span<const uint8_t> in_;
  size_t pos_ = 0;
};

uint8_t PackMetadataFlags(const ColumnMetadata& m) {
  uint8_t flags = 0;
  if (m.sorted) flags |= 1;
  if (m.dense) flags |= 2;
  if (m.unique) flags |= 4;
  if (m.min_max_known) flags |= 8;
  if (m.cardinality_known) flags |= 16;
  if (m.null_known) flags |= 32;
  if (m.has_nulls) flags |= 64;
  return flags;
}

void UnpackMetadataFlags(uint8_t flags, ColumnMetadata* m) {
  m->sorted = flags & 1;
  m->dense = flags & 2;
  m->unique = flags & 4;
  m->min_max_known = flags & 8;
  m->cardinality_known = flags & 16;
  m->null_known = flags & 32;
  m->has_nulls = flags & 64;
}

/// Pads `out` with zeros to the next multiple of `page_size` and appends
/// the blob, recording its placement and checksum.
void AppendBlob(std::vector<uint8_t>* out, uint32_t page_size,
                const void* data, uint64_t n, BlobRef* ref) {
  const uint64_t aligned =
      (out->size() + page_size - 1) / page_size * page_size;
  out->resize(aligned, 0);
  ref->offset = aligned;
  ref->length = n;
  ref->crc32c = Crc32c(static_cast<const uint8_t*>(data), n);
  const size_t old = out->size();
  out->resize(old + n);
  if (n > 0) std::memcpy(out->data() + old, data, n);
}

Status ValidateBlob(const BlobRef& b, uint64_t file_size, const char* what) {
  if (b.length > file_size || b.offset > file_size - b.length ||
      (b.length > 0 && b.offset < kHeaderSizeV2)) {
    return Status::IOError(std::string("v2 directory: ") + what +
                           " blob out of bounds (offset " +
                           std::to_string(b.offset) + ", length " +
                           std::to_string(b.length) + ", file size " +
                           std::to_string(file_size) + ")");
  }
  return Status::OK();
}

Status ReadColumnEntry(DirReader* r, uint64_t file_size, uint32_t version,
                       ColumnEntry* e) {
  TDE_RETURN_NOT_OK(r->Str(&e->name));
  uint8_t type_raw, comp_raw, enc_raw;
  TDE_RETURN_NOT_OK(r->U8(&type_raw));
  TDE_RETURN_NOT_OK(r->U8(&comp_raw));
  TDE_RETURN_NOT_OK(r->U8(&enc_raw));
  TDE_RETURN_NOT_OK(r->U8(&e->width));
  TDE_RETURN_NOT_OK(r->U8(&e->token_width));
  if (type_raw >= kNumTypes) {
    return Status::IOError("v2 directory: bad type byte for column '" +
                           e->name + "'");
  }
  if (comp_raw > static_cast<uint8_t>(CompressionKind::kArrayDict)) {
    return Status::IOError("v2 directory: bad compression byte for column '" +
                           e->name + "'");
  }
  // kSegmented (6) is a legal *representative* encoding byte in v3 — the
  // column must then carry a segment table, checked below.
  const bool segmented_enc =
      version >= kFormatVersion3 &&
      enc_raw == static_cast<uint8_t>(EncodingType::kSegmented);
  if (enc_raw > static_cast<uint8_t>(EncodingType::kRunLength) &&
      !segmented_enc) {
    return Status::IOError("v2 directory: bad encoding byte for column '" +
                           e->name + "'");
  }
  e->type = static_cast<TypeId>(type_raw);
  e->compression = comp_raw;
  e->encoding = static_cast<EncodingType>(enc_raw);

  uint8_t flags;
  TDE_RETURN_NOT_OK(r->U8(&flags));
  UnpackMetadataFlags(flags, &e->metadata);
  TDE_RETURN_NOT_OK(r->I64(&e->metadata.min_value));
  TDE_RETURN_NOT_OK(r->I64(&e->metadata.max_value));
  TDE_RETURN_NOT_OK(r->U64(&e->metadata.cardinality));
  TDE_RETURN_NOT_OK(r->U32(&e->encoding_changes));
  TDE_RETURN_NOT_OK(r->U64(&e->rows));

  TDE_RETURN_NOT_OK(r->Blob(&e->stream));
  TDE_RETURN_NOT_OK(ValidateBlob(e->stream, file_size, "stream"));

  uint8_t has_heap;
  TDE_RETURN_NOT_OK(r->U8(&has_heap));
  e->has_heap = has_heap != 0;
  if (e->has_heap) {
    TDE_RETURN_NOT_OK(r->Blob(&e->heap));
    TDE_RETURN_NOT_OK(ValidateBlob(e->heap, file_size, "heap"));
    TDE_RETURN_NOT_OK(r->U64(&e->heap_entries));
    uint8_t sorted, collation;
    TDE_RETURN_NOT_OK(r->U8(&sorted));
    TDE_RETURN_NOT_OK(r->U8(&collation));
    if (collation > static_cast<uint8_t>(Collation::kLocale)) {
      return Status::IOError("v2 directory: bad collation for column '" +
                             e->name + "'");
    }
    e->heap_sorted = sorted != 0;
    e->heap_collation = collation;
    // Each heap entry is at least its 4-byte length prefix.
    if (e->heap_entries > e->heap.length / 4) {
      return Status::IOError("v2 directory: heap of column '" + e->name +
                             "' claims " + std::to_string(e->heap_entries) +
                             " entries in " + std::to_string(e->heap.length) +
                             " bytes");
    }
  }

  uint8_t has_dict;
  TDE_RETURN_NOT_OK(r->U8(&has_dict));
  e->has_dict = has_dict != 0;
  if (e->has_dict) {
    TDE_RETURN_NOT_OK(r->Blob(&e->dict));
    TDE_RETURN_NOT_OK(ValidateBlob(e->dict, file_size, "dictionary"));
    uint8_t dtype, sorted;
    TDE_RETURN_NOT_OK(r->U8(&dtype));
    TDE_RETURN_NOT_OK(r->U8(&sorted));
    TDE_RETURN_NOT_OK(r->U64(&e->dict_entries));
    if (dtype >= kNumTypes) {
      return Status::IOError("v2 directory: bad dictionary type for column '" +
                             e->name + "'");
    }
    e->dict_type = static_cast<TypeId>(dtype);
    e->dict_sorted = sorted != 0;
    if (e->dict_entries != e->dict.length / sizeof(Lane) ||
        e->dict.length % sizeof(Lane) != 0) {
      return Status::IOError("v2 directory: dictionary of column '" + e->name +
                             "' claims " + std::to_string(e->dict_entries) +
                             " entries in " + std::to_string(e->dict.length) +
                             " bytes");
    }
  }

  if (version >= kFormatVersion3) {
    uint32_t segment_count;
    TDE_RETURN_NOT_OK(r->U32(&segment_count));
    if (segment_count > e->rows) {
      return Status::IOError("v3 directory: column '" + e->name +
                             "' claims " + std::to_string(segment_count) +
                             " segments over " + std::to_string(e->rows) +
                             " rows");
    }
    // Each serialized segment occupies >= 60 directory bytes, so a hostile
    // count cannot reserve past the directory length anyway; still, cap the
    // up-front reservation and let push_back grow.
    e->segments.reserve(std::min<uint32_t>(segment_count, 4096));
    uint64_t covered = 0;
    for (uint32_t si = 0; si < segment_count; ++si) {
      SegmentEntry s;
      TDE_RETURN_NOT_OK(r->Blob(&s.blob));
      TDE_RETURN_NOT_OK(ValidateBlob(s.blob, file_size, "segment"));
      TDE_RETURN_NOT_OK(r->U64(&s.rows));
      uint8_t senc;
      TDE_RETURN_NOT_OK(r->U8(&senc));
      TDE_RETURN_NOT_OK(r->U8(&s.width));
      TDE_RETURN_NOT_OK(r->U8(&s.bits));
      TDE_RETURN_NOT_OK(r->U8(&s.token_width));
      // Segment blobs are real stream blobs: never the container value.
      if (senc > static_cast<uint8_t>(EncodingType::kRunLength)) {
        return Status::IOError(
            "v3 directory: bad segment encoding byte for column '" + e->name +
            "'");
      }
      s.encoding = static_cast<EncodingType>(senc);
      uint8_t zflags;
      TDE_RETURN_NOT_OK(r->U8(&zflags));
      UnpackMetadataFlags(zflags, &s.zone);
      TDE_RETURN_NOT_OK(r->I64(&s.zone.min_value));
      TDE_RETURN_NOT_OK(r->I64(&s.zone.max_value));
      TDE_RETURN_NOT_OK(r->U64(&s.zone.cardinality));
      TDE_RETURN_NOT_OK(r->I64(&s.null_count));
      if (s.rows == 0) {
        return Status::IOError("v3 directory: empty segment in column '" +
                               e->name + "'");
      }
      if (s.rows > e->rows - covered) {
        return Status::IOError(
            "v3 directory: segment row counts of column '" + e->name +
            "' overflow its " + std::to_string(e->rows) + " rows");
      }
      covered += s.rows;
      e->segments.push_back(std::move(s));
    }
    if (segment_count > 0 && covered != e->rows) {
      return Status::IOError("v3 directory: segments of column '" + e->name +
                             "' cover " + std::to_string(covered) + " of " +
                             std::to_string(e->rows) + " rows");
    }
    if (!e->segments.empty() && e->stream.length != 0) {
      return Status::IOError("v3 directory: segmented column '" + e->name +
                             "' carries a monolithic stream blob");
    }
  }
  if (e->encoding == EncodingType::kSegmented && e->segments.empty()) {
    return Status::IOError("v3 directory: column '" + e->name +
                           "' marked segmented but has no segment table");
  }
  return Status::OK();
}

ColdSource MakeColdSource(const ColumnEntry& e, const std::string& table_name,
                          std::shared_ptr<FileReader> file,
                          std::shared_ptr<ColumnCache> cache) {
  ColdSource src;
  src.file = std::move(file);
  src.cache = std::move(cache);
  src.table_name = table_name;
  src.column_name = e.name;
  src.rows = e.rows;
  src.width = e.width;
  src.token_width = e.token_width;
  src.encoding = e.encoding;
  src.stream = e.stream;
  uint64_t start = 0;
  src.segments.reserve(e.segments.size());
  for (const SegmentEntry& s : e.segments) {
    ColdSegment cs;
    cs.blob = s.blob;
    cs.shape.start_row = start;
    cs.shape.rows = s.rows;
    cs.shape.encoding = s.encoding;
    cs.shape.width = s.width;
    cs.shape.bits = s.bits;
    cs.shape.token_width = s.token_width;
    cs.shape.physical_bytes = s.blob.length;
    cs.shape.resident = false;
    cs.shape.zone.meta = s.zone;
    cs.shape.zone.null_count = s.null_count;
    src.segments.push_back(std::move(cs));
    start += s.rows;
  }
  src.has_heap = e.has_heap;
  src.heap = e.heap;
  src.heap_entries = e.heap_entries;
  src.heap_sorted = e.heap_sorted;
  src.heap_collation = static_cast<Collation>(e.heap_collation);
  src.has_dict = e.has_dict;
  src.dict = e.dict;
  src.dict_type = e.dict_type;
  src.dict_sorted = e.dict_sorted;
  src.dict_entries = e.dict_entries;
  return src;
}

std::shared_ptr<Column> MakeColdColumn(const ColumnEntry& e,
                                       std::shared_ptr<const ColdSource> src) {
  auto col = std::make_shared<Column>(e.name, e.type);
  col->set_compression(static_cast<CompressionKind>(e.compression));
  *col->mutable_metadata() = e.metadata;
  col->set_encoding_changes(static_cast<int>(e.encoding_changes));
  col->MakeCold(std::move(src));
  return col;
}

}  // namespace

bool IsV2Magic(const uint8_t* bytes, size_t n) {
  return n >= sizeof(kMagicV2) &&
         std::memcmp(bytes, kMagicV2, sizeof(kMagicV2)) == 0;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open '" + tmp + "'");
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  if (ok) ok = ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' over '" + path +
                           "'");
  }
  return Status::OK();
}

Status SerializeDatabaseV2(const Database& db, std::vector<uint8_t>* out,
                           const WriteOptionsV2& options) {
  if (!ValidPageSize(options.page_size)) {
    return Status::InvalidArgument("v2 page size must be a power of two in "
                                   "[512, 1MiB], got " +
                                   std::to_string(options.page_size));
  }
  out->assign(kHeaderSizeV2, 0);

  // Pass 1: blobs, collecting directory entries as they are placed.
  // The header version is decided here: any segmented column promotes the
  // whole file to v3; otherwise the bytes are identical to a v2 write.
  bool any_segmented = false;
  std::vector<TableEntry> tables;
  for (const auto& t : db.tables()) {
    TableEntry te;
    te.name = t->name();
    te.rows = t->rows();
    for (size_t i = 0; i < t->num_columns(); ++i) {
      const Column& c = t->column(i);
      // Pin cold columns so their bytes are resident for the copy-through.
      TDE_ASSIGN_OR_RETURN(auto pin, c.Pin());
      const EncodedStream* stream = c.data();
      if (stream == nullptr) {
        return Status::Internal("column '" + te.name + "." + c.name() +
                                "' has no data stream to serialize");
      }
      ColumnEntry e;
      e.name = c.name();
      e.type = c.type();
      e.compression = static_cast<uint8_t>(c.compression());
      e.encoding = stream->type();
      e.width = stream->width();
      e.token_width = c.TokenWidth();
      e.metadata = c.metadata();
      e.encoding_changes = static_cast<uint32_t>(c.encoding_changes());
      e.rows = stream->size();
      if (stream->segmented()) {
        any_segmented = true;
        const auto* seg = static_cast<const SegmentedStream*>(stream);
        const std::vector<SegmentShape> shapes = seg->Shapes();
        if (shapes.empty()) {
          return Status::Internal("segmented column '" + te.name + "." +
                                  c.name() + "' has no segments");
        }
        // `e.stream` stays empty — each segment owns a blob. The open tail
        // (if any) is encoded from a copy and written as the last sealed
        // entry; the in-memory column is not mutated.
        for (size_t si = 0; si < shapes.size(); ++si) {
          SegmentEntry se;
          std::shared_ptr<EncodedStream> sstream;
          if (shapes[si].open_tail) {
            SegmentZone zone;
            TDE_ASSIGN_OR_RETURN(sstream, seg->EncodeTailCopy(&zone));
            se.zone = zone.meta;
            se.null_count = zone.null_count;
          } else {
            TDE_ASSIGN_OR_RETURN(sstream, seg->SegmentStreamForRead(si));
            se.zone = shapes[si].zone.meta;
            se.null_count = shapes[si].zone.null_count;
          }
          se.rows = sstream->size();
          se.encoding = sstream->type();
          se.width = sstream->width();
          se.bits = sstream->bits();
          se.token_width = sstream->TokenWidthBytes();
          AppendBlob(out, options.page_size, sstream->buffer().data(),
                     sstream->buffer().size(), &se.blob);
          e.segments.push_back(std::move(se));
        }
      } else {
        AppendBlob(out, options.page_size, stream->buffer().data(),
                   stream->buffer().size(), &e.stream);
      }
      if (c.compression() == CompressionKind::kHeap) {
        const StringHeap* h = c.heap();
        if (h == nullptr) {
          return Status::Internal("heap column '" + te.name + "." + c.name() +
                                  "' has no heap to serialize");
        }
        e.has_heap = true;
        AppendBlob(out, options.page_size, h->buffer().data(),
                   h->buffer().size(), &e.heap);
        e.heap_entries = h->entry_count();
        e.heap_sorted = h->sorted();
        e.heap_collation = static_cast<uint8_t>(h->collation());
      } else if (c.compression() == CompressionKind::kArrayDict) {
        const ArrayDictionary* d = c.array_dict();
        if (d == nullptr) {
          return Status::Internal("dictionary column '" + te.name + "." +
                                  c.name() + "' has no dictionary");
        }
        e.has_dict = true;
        AppendBlob(out, options.page_size, d->values.data(),
                   d->values.size() * sizeof(Lane), &e.dict);
        e.dict_type = d->type;
        e.dict_sorted = d->sorted;
        e.dict_entries = d->values.size();
      }
      te.columns.push_back(std::move(e));
    }
    tables.push_back(std::move(te));
  }

  // Pass 2: the directory, page-aligned after the last blob.
  const uint64_t dir_offset =
      (out->size() + options.page_size - 1) / options.page_size *
      options.page_size;
  out->resize(dir_offset, 0);
  {
    DirWriter w(out);
    w.U32(static_cast<uint32_t>(tables.size()));
    for (const TableEntry& te : tables) {
      w.Str(te.name);
      w.U64(te.rows);
      w.U32(static_cast<uint32_t>(te.columns.size()));
      for (const ColumnEntry& e : te.columns) {
        w.Str(e.name);
        w.U8(static_cast<uint8_t>(e.type));
        w.U8(e.compression);
        w.U8(static_cast<uint8_t>(e.encoding));
        w.U8(e.width);
        w.U8(e.token_width);
        w.U8(PackMetadataFlags(e.metadata));
        w.I64(e.metadata.min_value);
        w.I64(e.metadata.max_value);
        w.U64(e.metadata.cardinality);
        w.U32(e.encoding_changes);
        w.U64(e.rows);
        w.Blob(e.stream);
        w.U8(e.has_heap ? 1 : 0);
        if (e.has_heap) {
          w.Blob(e.heap);
          w.U64(e.heap_entries);
          w.U8(e.heap_sorted ? 1 : 0);
          w.U8(e.heap_collation);
        }
        w.U8(e.has_dict ? 1 : 0);
        if (e.has_dict) {
          w.Blob(e.dict);
          w.U8(static_cast<uint8_t>(e.dict_type));
          w.U8(e.dict_sorted ? 1 : 0);
          w.U64(e.dict_entries);
        }
        if (any_segmented) {
          // v3 extension: every column carries a segment table (count 0
          // for monolithic columns).
          w.U32(static_cast<uint32_t>(e.segments.size()));
          for (const SegmentEntry& s : e.segments) {
            w.Blob(s.blob);
            w.U64(s.rows);
            w.U8(static_cast<uint8_t>(s.encoding));
            w.U8(s.width);
            w.U8(s.bits);
            w.U8(s.token_width);
            w.U8(PackMetadataFlags(s.zone));
            w.I64(s.zone.min_value);
            w.I64(s.zone.max_value);
            w.U64(s.zone.cardinality);
            w.I64(s.null_count);
          }
        }
      }
    }
  }
  const uint64_t dir_length = out->size() - dir_offset;

  // Header last: it seals the directory placement and both CRCs.
  uint8_t* h = out->data();
  std::memcpy(h, kMagicV2, sizeof(kMagicV2));
  PutU32(h + kVersionOff, any_segmented ? kFormatVersion3 : kFormatVersion2);
  PutU32(h + kPageSizeOff, options.page_size);
  PutU64(h + kDirOffsetOff, dir_offset);
  PutU64(h + kDirLengthOff, dir_length);
  PutU32(h + kDirCrcOff, Crc32c(out->data() + dir_offset, dir_length));
  PutU64(h + kFileSizeOff, out->size());
  PutU32(h + kHeaderCrcOff, Crc32c(h, kHeaderCrcOff));
  return Status::OK();
}

Status WriteDatabaseV2(const Database& db, const std::string& path,
                       const WriteOptionsV2& options) {
  std::vector<uint8_t> bytes;
  TDE_RETURN_NOT_OK(SerializeDatabaseV2(db, &bytes, options));
  return WriteFileAtomic(path, bytes);
}

namespace {

/// Validated header facts: where the directory lives and what it must hash
/// to. Produced from the 64 header bytes alone, before any blob is touched.
struct HeaderV2 {
  uint32_t version = kFormatVersion2;
  uint32_t page_size = 0;
  uint64_t file_size = 0;
  uint64_t dir_offset = 0;
  uint64_t dir_length = 0;
  uint32_t dir_crc32c = 0;
};

Status ParseHeaderV2(std::span<const uint8_t> header, uint64_t actual_size,
                     HeaderV2* out) {
  if (header.size() < kHeaderSizeV2) {
    return Status::IOError("v2 file shorter than its header");
  }
  const uint8_t* h = header.data();
  if (!IsV2Magic(h, header.size())) {
    return Status::IOError("not a TDE v2 database file");
  }
  if (Crc32c(h, kHeaderCrcOff) != GetU32(h + kHeaderCrcOff)) {
    return Status::IOError("v2 header checksum mismatch");
  }
  const uint32_t version = GetU32(h + kVersionOff);
  if (version != kFormatVersion2 && version != kFormatVersion3) {
    return Status::IOError("unsupported v2 format version " +
                           std::to_string(version));
  }
  out->version = version;
  out->page_size = GetU32(h + kPageSizeOff);
  if (!ValidPageSize(out->page_size)) {
    return Status::IOError("v2 header: bad page size " +
                           std::to_string(out->page_size));
  }
  out->file_size = GetU64(h + kFileSizeOff);
  if (out->file_size != actual_size) {
    return Status::IOError("v2 file is " + std::to_string(actual_size) +
                           " bytes but header says " +
                           std::to_string(out->file_size) +
                           " (truncated or padded)");
  }
  out->dir_offset = GetU64(h + kDirOffsetOff);
  out->dir_length = GetU64(h + kDirLengthOff);
  if (out->dir_length > out->file_size ||
      out->dir_offset > out->file_size - out->dir_length ||
      out->dir_offset < kHeaderSizeV2) {
    return Status::IOError("v2 header: directory out of bounds");
  }
  out->dir_crc32c = GetU32(h + kDirCrcOff);
  return Status::OK();
}

Result<DirectoryV2> ParseDirectoryBody(const HeaderV2& header,
                                       std::span<const uint8_t> dir_span) {
  if (Crc32c(dir_span.data(), dir_span.size()) != header.dir_crc32c) {
    return {Status::IOError("v2 directory checksum mismatch")};
  }
  DirectoryV2 dir;
  dir.page_size = header.page_size;
  dir.file_size = header.file_size;
  dir.version = header.version;

  DirReader r(dir_span);
  uint32_t table_count;
  TDE_RETURN_NOT_OK(r.U32(&table_count));
  for (uint32_t ti = 0; ti < table_count; ++ti) {
    TableEntry te;
    TDE_RETURN_NOT_OK(r.Str(&te.name));
    TDE_RETURN_NOT_OK(r.U64(&te.rows));
    uint32_t column_count;
    TDE_RETURN_NOT_OK(r.U32(&column_count));
    for (uint32_t ci = 0; ci < column_count; ++ci) {
      ColumnEntry e;
      TDE_RETURN_NOT_OK(ReadColumnEntry(&r, dir.file_size, dir.version, &e));
      te.columns.push_back(std::move(e));
    }
    dir.tables.push_back(std::move(te));
  }
  if (!r.AtEnd()) {
    return {Status::IOError("v2 directory has trailing bytes")};
  }
  return dir;
}

}  // namespace

Result<DirectoryV2> ParseDirectoryV2(std::span<const uint8_t> file_bytes) {
  HeaderV2 header;
  TDE_RETURN_NOT_OK(
      ParseHeaderV2(file_bytes, file_bytes.size(), &header));
  return ParseDirectoryBody(
      header, file_bytes.subspan(static_cast<size_t>(header.dir_offset),
                                 static_cast<size_t>(header.dir_length)));
}

Result<Database> OpenDatabaseV2(const std::string& path,
                                std::shared_ptr<ColumnCache> cache) {
  TDE_ASSIGN_OR_RETURN(auto file, FileReader::Open(path));

  // Only the header + directory are read here: O(directory) open.
  std::vector<uint8_t> header_scratch;
  TDE_ASSIGN_OR_RETURN(
      auto header_span,
      file->Read(0, std::min<uint64_t>(kHeaderSizeV2, file->size()),
                 &header_scratch));
  HeaderV2 header;
  TDE_RETURN_NOT_OK(ParseHeaderV2(header_span, file->size(), &header));

  std::vector<uint8_t> dir_scratch;
  TDE_ASSIGN_OR_RETURN(
      auto dir_span,
      file->Read(header.dir_offset, header.dir_length, &dir_scratch));
  TDE_ASSIGN_OR_RETURN(DirectoryV2 dir,
                       ParseDirectoryBody(header, dir_span));

  Database db;
  for (const TableEntry& te : dir.tables) {
    auto table = std::make_shared<Table>(te.name);
    for (const ColumnEntry& e : te.columns) {
      auto src = std::make_shared<const ColdSource>(
          MakeColdSource(e, te.name, file, cache));
      table->AddColumn(MakeColdColumn(e, std::move(src)));
    }
    db.AddTable(std::move(table));
  }
  return db;
}

Result<Database> ReadDatabaseV2Eager(std::span<const uint8_t> file_bytes) {
  TDE_ASSIGN_OR_RETURN(DirectoryV2 dir, ParseDirectoryV2(file_bytes));
  const ColumnCache::BlobReadFn read =
      [file_bytes](const BlobRef& ref,
                   std::vector<uint8_t>*) -> Result<std::span<const uint8_t>> {
    if (ref.length > file_bytes.size() ||
        ref.offset > file_bytes.size() - ref.length) {
      return {Status::IOError("v2 blob out of bounds")};
    }
    return file_bytes.subspan(static_cast<size_t>(ref.offset),
                              static_cast<size_t>(ref.length));
  };
  Database db;
  for (const TableEntry& te : dir.tables) {
    auto table = std::make_shared<Table>(te.name);
    for (const ColumnEntry& e : te.columns) {
      const ColdSource src = MakeColdSource(e, te.name, nullptr, nullptr);
      TDE_ASSIGN_OR_RETURN(auto payload,
                           ColumnCache::LoadPayloadFrom(src, read));
      auto col = std::make_shared<Column>(e.name, e.type);
      col->set_compression(static_cast<CompressionKind>(e.compression));
      *col->mutable_metadata() = e.metadata;
      col->set_encoding_changes(static_cast<int>(e.encoding_changes));
      col->set_data(payload->stream);
      col->set_heap(payload->heap);
      col->set_array_dict(payload->dict);
      table->AddColumn(std::move(col));
    }
    db.AddTable(std::move(table));
  }
  return db;
}

}  // namespace pager
}  // namespace tde
