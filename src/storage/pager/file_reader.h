#ifndef TDE_STORAGE_PAGER_FILE_READER_H_
#define TDE_STORAGE_PAGER_FILE_READER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tde {
namespace pager {

/// Read-only random access to a database file. The preferred backend is a
/// whole-file private mmap, which makes Read() a zero-copy bounds-checked
/// subspan — the OS pages column bytes in on first touch, so an open is
/// O(directory) and the resident set tracks the working set (Sect. 2.3.3's
/// memory-mapped single-file database). When mmap is unavailable (or
/// TDE_NO_MMAP=1 forces it, e.g. for tests), a pread fallback reads into a
/// caller-provided scratch buffer instead.
class FileReader {
 public:
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  static Result<std::shared_ptr<FileReader>> Open(const std::string& path);

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when Read() returns zero-copy views into the mapping.
  bool mmapped() const { return map_ != nullptr; }

  /// Returns file bytes [offset, offset + length). Zero-copy when mmapped;
  /// otherwise preads into `*scratch` and returns a span over it. The span
  /// is valid while this reader (and, for the fallback, `*scratch`) lives.
  Result<std::span<const uint8_t>> Read(uint64_t offset, uint64_t length,
                                        std::vector<uint8_t>* scratch) const;

 private:
  FileReader() = default;

  int fd_ = -1;
  void* map_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_FILE_READER_H_
