#ifndef TDE_STORAGE_PAGER_FORMAT_H_
#define TDE_STORAGE_PAGER_FORMAT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/encoding/metadata.h"
#include "src/storage/database_file.h"
#include "src/storage/pager/pager_types.h"

namespace tde {
namespace pager {

class ColumnCache;

/// File format v2 ("TDEDB002"): a page-aligned single-file database whose
/// column blobs are independently addressable and verifiable, so a query
/// can fault in exactly the columns it touches.
///
///   [0, 64)        file header: magic, version, page size, directory
///                  offset/length/CRC, file size, header CRC
///   [page, ...)    column blobs — stream bytes, heap bytes, dictionary
///                  lanes — each aligned to the page size, each carrying a
///                  CRC32C in its directory entry
///   [dir_offset)   the directory: per table, per column — name, type,
///                  compression, encoding, widths, row count, min/max/
///                  sorted/cardinality metadata, and {offset, length, CRC}
///                  for every blob
///
/// The directory is everything the planner needs; opening a database is
/// O(directory) regardless of data volume.
///
/// Format v3 is a directory extension of v2 under the same magic: when any
/// column is segmented the header version reads 3 and every column entry
/// carries a trailing segment table — a u32 segment count (0 for
/// monolithic columns) followed by, per segment, its blob {offset, length,
/// CRC}, row count, physical encoding, width/bits/token width, and zone
/// map (metadata flags, min, max, cardinality, NULL count). Databases
/// without segmented columns serialize byte-identically to v2, and v2
/// readers are never handed a v3 file they would misparse (the version
/// gate rejects it).
constexpr uint8_t kMagicV2[8] = {'T', 'D', 'E', 'D', 'B', '0', '0', '2'};
constexpr uint32_t kFormatVersion2 = 2;
constexpr uint32_t kFormatVersion3 = 3;
constexpr size_t kHeaderSizeV2 = 64;

/// True when `bytes` starts with the v2 magic.
bool IsV2Magic(const uint8_t* bytes, size_t n);

/// Directory entry for one segment of a segmented column (format v3).
struct SegmentEntry {
  BlobRef blob;
  uint64_t rows = 0;
  EncodingType encoding = EncodingType::kUncompressed;
  uint8_t width = 8;
  uint8_t bits = 0;
  uint8_t token_width = 8;
  /// Zone map: the segment's own EncodingStats-derived metadata.
  ColumnMetadata zone;
  int64_t null_count = -1;  // -1 = unknown
};

/// Directory entry for one column — the serialized twin of ColdSource.
struct ColumnEntry {
  std::string name;
  TypeId type = TypeId::kInteger;
  uint8_t compression = 0;  // CompressionKind
  EncodingType encoding = EncodingType::kUncompressed;
  uint8_t width = 8;
  uint8_t token_width = 8;
  ColumnMetadata metadata;
  uint32_t encoding_changes = 0;
  uint64_t rows = 0;

  BlobRef stream;

  /// Format v3: non-empty for segmented columns (`stream` is then empty —
  /// each segment owns its blob).
  std::vector<SegmentEntry> segments;

  bool has_heap = false;
  BlobRef heap;
  uint64_t heap_entries = 0;
  bool heap_sorted = false;
  uint8_t heap_collation = 0;

  bool has_dict = false;
  BlobRef dict;
  TypeId dict_type = TypeId::kInteger;
  bool dict_sorted = false;
  uint64_t dict_entries = 0;
};

struct TableEntry {
  std::string name;
  uint64_t rows = 0;
  std::vector<ColumnEntry> columns;
};

struct DirectoryV2 {
  uint32_t page_size = 0;
  uint64_t file_size = 0;
  /// 2 or 3; 3 means column entries carry segment tables.
  uint32_t version = kFormatVersion2;
  std::vector<TableEntry> tables;
};

struct WriteOptionsV2 {
  /// Alignment of every blob. Must be a power of two in [512, 1 << 20].
  uint32_t page_size = 4096;
};

/// Serializes the database in format v2. Cold columns are pinned and their
/// bytes copied through; the database is not mutated.
Status SerializeDatabaseV2(const Database& db, std::vector<uint8_t>* out,
                           const WriteOptionsV2& options = {});
Status WriteDatabaseV2(const Database& db, const std::string& path,
                       const WriteOptionsV2& options = {});

/// Writes `bytes` to a sibling temp file, fsyncs, and rename()s it over
/// `path`. The switch is atomic: a crash mid-write leaves the old file
/// intact, and an engine lazily reading from `path` keeps its mmap/fd on
/// the old inode, so its directory offsets stay valid instead of dangling
/// over a truncated in-place rewrite. Used by both the v1 and v2 writers.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes);

/// Parses and validates the header + directory of a v2 image. Every
/// length/offset is bounds-checked against the span; header and directory
/// CRCs must match. Blob contents are NOT read (that is the cache's job).
Result<DirectoryV2> ParseDirectoryV2(std::span<const uint8_t> file_bytes);

/// Lazy open: O(directory). Returns a database whose columns are cold and
/// materialize through `cache` on first touch. The returned tables keep the
/// file reader and cache alive via shared ownership.
Result<Database> OpenDatabaseV2(const std::string& path,
                                std::shared_ptr<ColumnCache> cache);

/// Eager read of a v2 image from memory: every column materialized and
/// warmed, nothing retained. The v2 counterpart of DeserializeDatabase.
Result<Database> ReadDatabaseV2Eager(std::span<const uint8_t> file_bytes);

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_FORMAT_H_
