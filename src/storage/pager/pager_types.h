#ifndef TDE_STORAGE_PAGER_PAGER_TYPES_H_
#define TDE_STORAGE_PAGER_PAGER_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/collation.h"
#include "src/common/types.h"
#include "src/encoding/header.h"
#include "src/encoding/stream.h"
#include "src/storage/dictionary.h"
#include "src/storage/segment/segment.h"
#include "src/storage/string_heap.h"

namespace tde {
namespace pager {

class ColumnCache;
class FileReader;

/// One independently addressable byte range of a v2 database file.
struct BlobRef {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32c = 0;
};

/// Directory facts of one segment of a format-v3 segmented column: the
/// blob holding its encoded stream plus the SegmentShape (rows, encoding,
/// zone map) recorded at write time.
struct ColdSegment {
  BlobRef blob;
  SegmentShape shape;
};

/// The materialized pieces of one column, built from its blobs on first
/// touch. Shared ownership is the pin mechanism: the owning Column holds
/// one reference while resident, and every executing query pins another
/// (Column::Pin), so the cache can only reclaim a column whose payload is
/// referenced by nobody but the column itself.
struct LoadedColumn {
  std::shared_ptr<EncodedStream> stream;
  std::shared_ptr<StringHeap> heap;
  std::shared_ptr<ArrayDictionary> dict;
  /// Compressed (on-disk) bytes — the unit the cache budget is charged in:
  /// caching compressed data stretches the budget (Lin et al.).
  uint64_t compressed_bytes = 0;
};

/// Immutable description of where a cold column's bytes live, copied out of
/// the v2 directory at open time. Everything the planner needs (row count,
/// widths, encoding, blob sizes) is here, so tactical decisions never fault
/// in row data.
struct ColdSource {
  std::shared_ptr<FileReader> file;
  std::shared_ptr<ColumnCache> cache;
  std::string table_name;
  std::string column_name;

  uint64_t rows = 0;
  uint8_t width = 8;
  uint8_t token_width = 8;
  EncodingType encoding = EncodingType::kUncompressed;

  BlobRef stream;

  /// Format v3: the column is segmented — `stream` is empty and each
  /// segment has its own blob. v1/v2 columns leave this empty.
  std::vector<ColdSegment> segments;

  bool has_heap = false;
  BlobRef heap;
  uint64_t heap_entries = 0;
  bool heap_sorted = false;
  Collation heap_collation = Collation::kLocale;

  bool has_dict = false;
  BlobRef dict;
  TypeId dict_type = TypeId::kInteger;
  bool dict_sorted = false;
  uint64_t dict_entries = 0;

  uint64_t CompressedBytes() const {
    uint64_t n = stream.length + (has_heap ? heap.length : 0) +
                 (has_dict ? dict.length : 0);
    for (const ColdSegment& s : segments) n += s.blob.length;
    return n;
  }
};

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_PAGER_TYPES_H_
