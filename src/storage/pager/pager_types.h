#ifndef TDE_STORAGE_PAGER_PAGER_TYPES_H_
#define TDE_STORAGE_PAGER_PAGER_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/collation.h"
#include "src/common/types.h"
#include "src/encoding/header.h"
#include "src/encoding/stream.h"
#include "src/storage/dictionary.h"
#include "src/storage/string_heap.h"

namespace tde {
namespace pager {

class ColumnCache;
class FileReader;

/// One independently addressable byte range of a v2 database file.
struct BlobRef {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32c = 0;
};

/// The materialized pieces of one column, built from its blobs on first
/// touch. Shared ownership is the pin mechanism: the owning Column holds
/// one reference while resident, and every executing query pins another
/// (Column::Pin), so the cache can only reclaim a column whose payload is
/// referenced by nobody but the column itself.
struct LoadedColumn {
  std::shared_ptr<EncodedStream> stream;
  std::shared_ptr<StringHeap> heap;
  std::shared_ptr<ArrayDictionary> dict;
  /// Compressed (on-disk) bytes — the unit the cache budget is charged in:
  /// caching compressed data stretches the budget (Lin et al.).
  uint64_t compressed_bytes = 0;
};

/// Immutable description of where a cold column's bytes live, copied out of
/// the v2 directory at open time. Everything the planner needs (row count,
/// widths, encoding, blob sizes) is here, so tactical decisions never fault
/// in row data.
struct ColdSource {
  std::shared_ptr<FileReader> file;
  std::shared_ptr<ColumnCache> cache;
  std::string table_name;
  std::string column_name;

  uint64_t rows = 0;
  uint8_t width = 8;
  uint8_t token_width = 8;
  EncodingType encoding = EncodingType::kUncompressed;

  BlobRef stream;

  bool has_heap = false;
  BlobRef heap;
  uint64_t heap_entries = 0;
  bool heap_sorted = false;
  Collation heap_collation = Collation::kLocale;

  bool has_dict = false;
  BlobRef dict;
  TypeId dict_type = TypeId::kInteger;
  bool dict_sorted = false;
  uint64_t dict_entries = 0;

  uint64_t CompressedBytes() const {
    return stream.length + (has_heap ? heap.length : 0) +
           (has_dict ? dict.length : 0);
  }
};

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_PAGER_TYPES_H_
