#ifndef TDE_STORAGE_PAGER_COLUMN_CACHE_H_
#define TDE_STORAGE_PAGER_COLUMN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/storage/pager/pager_types.h"

namespace tde {

class Column;

namespace observe {
class Counter;
class Gauge;
}  // namespace observe

namespace pager {

/// Byte-budget LRU cache over cold columns' materialized payloads.
///
/// The budget is charged in *compressed* bytes (the blobs' on-disk size):
/// keeping data compressed across the storage/execution boundary is exactly
/// where compression pays twice (MorphStore; Lin et al.), because the same
/// budget then holds several times the logical data.
///
/// Residency protocol: a cold Column's payload is a shared_ptr owned by the
/// column while resident; executing queries pin it by copying the pointer
/// (Column::Pin). Eviction walks the LRU cold end and drops only payloads
/// whose sole owner is the column itself, so a query never loses data under
/// its feet — a pinned column simply stays resident past the budget until
/// its pins drain.
///
/// Thread-safe. The cache mutex covers bookkeeping only; blob I/O,
/// checksumming and decoding happen outside it with a per-column in-flight
/// set, so concurrent touchers of the *same* column wait for its one
/// materialization while touches of other columns (hits or loads) proceed
/// in parallel. Corruption — checksum mismatch, truncated blob, undecodable
/// stream — surfaces as a Status naming the table and column, never a
/// crash.
///
/// Exported metrics (MetricsRegistry::Global, visible via tde_stats):
///   pager.hits / pager.misses       materializations avoided / performed
///   pager.evictions                 payloads reclaimed under budget
///   pager.bytes_read                blob bytes fetched from the file
///   pager.checksum_failures         corrupt blobs detected
///   pager.bytes_resident (gauge)    compressed bytes currently cached
class ColumnCache {
 public:
  explicit ColumnCache(uint64_t budget_bytes);
  ~ColumnCache();

  ColumnCache(const ColumnCache&) = delete;
  ColumnCache& operator=(const ColumnCache&) = delete;

  /// Ensures `col` is resident: LRU-bumps a resident column (hit), loads
  /// its blobs otherwise (miss), then evicts past-budget victims.
  Status Ensure(const Column* col);

  /// Drops a column's cache entry (column destroyed or warmed). The payload
  /// itself lives on as long as the column/pins reference it.
  void Forget(const Column* col);

  /// Charge hook for segment-granular faults: a cold segment of `col` just
  /// materialized `bytes` compressed bytes. Bumps the column's entry and
  /// LRU position and evicts past-budget victims. No-op if the column has
  /// no entry (warmed or forgotten — it owns its bytes then).
  void AddSegmentBytes(const Column* col, uint64_t bytes);

  uint64_t bytes_resident() const;
  uint64_t budget_bytes() const;
  /// Adjusts the budget and immediately evicts down to it.
  void set_budget_bytes(uint64_t budget);

  /// One resident entry as seen by introspection. The column pointer stays
  /// valid as long as the caller holds the owning Database's tables (cache
  /// entries are erased before their column is destroyed).
  struct EntrySnapshot {
    const Column* column = nullptr;
    uint64_t bytes = 0;
  };
  /// Residency snapshot in LRU order, most recently used first.
  std::vector<EntrySnapshot> EntriesSnapshot() const;

  /// Fetches the bytes of one blob into a span (possibly backed by
  /// `*scratch`). Abstracts over mmap files, pread files, and in-memory
  /// images.
  using BlobReadFn = std::function<Result<std::span<const uint8_t>>(
      const BlobRef&, std::vector<uint8_t>*)>;

  /// Loads and verifies a column's blobs into a payload. No cache
  /// bookkeeping — also the substrate of the eager v2 read path.
  static Result<std::shared_ptr<const LoadedColumn>> LoadPayloadFrom(
      const ColdSource& src, const BlobReadFn& read);

 private:
  void EvictLocked(const Column* keep);

  mutable std::mutex mu_;
  /// Front = most recently used. Entries are resident cold columns.
  std::list<const Column*> lru_;
  struct Entry {
    std::list<const Column*>::iterator lru_pos;
    uint64_t bytes = 0;
  };
  std::unordered_map<const Column*, Entry> entries_;
  /// Columns whose materialization is in flight outside the lock; waiters
  /// block on `load_cv_` until the loader finishes (or fails, in which
  /// case a waiter retries the load itself).
  std::unordered_set<const Column*> loading_;
  std::condition_variable load_cv_;
  uint64_t bytes_resident_ = 0;
  uint64_t budget_ = 0;

  // Hits/misses/bytes_read flow through observe::QueryCount so they are
  // attributed to the faulting query; only the cache-global observations
  // keep direct registry handles.
  observe::Counter* evictions_;
  observe::Counter* checksum_failures_;
  observe::Gauge* bytes_resident_gauge_;
};

}  // namespace pager
}  // namespace tde

#endif  // TDE_STORAGE_PAGER_COLUMN_CACHE_H_
