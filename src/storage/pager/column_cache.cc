#include "src/storage/pager/column_cache.h"

#include <algorithm>
#include <cstring>

#include "src/observe/journal.h"
#include "src/observe/metrics.h"
#include "src/storage/column.h"
#include "src/storage/pager/crc32c.h"
#include "src/storage/pager/file_reader.h"
#include "src/storage/segment/segmented_stream.h"

namespace tde {
namespace pager {

namespace {

/// Budget charge of one cold (unloaded) segment descriptor in a lazily
/// opened segmented column's shell — an approximation of its in-memory
/// footprint (shape + loader closure).
constexpr uint64_t kSegmentShellCharge = 64;

/// Fetches one blob, verifies its checksum, and copies it into an owned
/// buffer. Errors name the table and column so a corrupt file is
/// diagnosable from the Status alone.
Result<std::vector<uint8_t>> FetchBlob(const ColdSource& src,
                                       const ColumnCache::BlobReadFn& read,
                                       const BlobRef& ref, const char* what,
                                       observe::Counter* checksum_failures) {
  std::vector<uint8_t> scratch;
  auto span_r = read(ref, &scratch);
  if (!span_r.ok()) {
    return {Status::IOError("column " + src.table_name + "." +
                            src.column_name + " " + what + " blob: " +
                            span_r.status().message())};
  }
  const std::span<const uint8_t> span = span_r.value();
  if (Crc32c(span.data(), span.size()) != ref.crc32c) {
    if (checksum_failures != nullptr) checksum_failures->Add();
    return {Status::IOError("checksum mismatch in column " + src.table_name +
                            "." + src.column_name + " (" + what + " blob, " +
                            std::to_string(ref.length) + " bytes at offset " +
                            std::to_string(ref.offset) + ")")};
  }
  if (!scratch.empty()) return scratch;  // pread path already owns the bytes
  return std::vector<uint8_t>(span.begin(), span.end());
}

/// Self-contained loader for one cold segment. Captures everything by
/// value (the file reader by shared_ptr), so it stays valid for as long as
/// the SegmentedStream that holds it — independent of the ColdSource
/// reference it was built from.
SegmentedStream::Loader MakeSegmentLoader(
    const ColdSource& src, const ColdSegment& seg, size_t index,
    observe::Counter* checksum_failures) {
  std::shared_ptr<FileReader> file = src.file;
  const BlobRef blob = seg.blob;
  const uint64_t rows = seg.shape.rows;
  const std::string name =
      src.table_name + "." + src.column_name + " segment " +
      std::to_string(index);
  return [file, blob, rows, name,
          checksum_failures]() -> Result<std::shared_ptr<EncodedStream>> {
    std::vector<uint8_t> scratch;
    auto span_r = file->Read(blob.offset, blob.length, &scratch);
    if (!span_r.ok()) {
      return {Status::IOError("column " + name + " blob: " +
                              span_r.status().message())};
    }
    const std::span<const uint8_t> span = span_r.value();
    if (Crc32c(span.data(), span.size()) != blob.crc32c) {
      if (checksum_failures != nullptr) checksum_failures->Add();
      return {Status::IOError("checksum mismatch in column " + name + " (" +
                              std::to_string(blob.length) +
                              " bytes at offset " +
                              std::to_string(blob.offset) + ")")};
    }
    std::vector<uint8_t> owned =
        scratch.empty() ? std::vector<uint8_t>(span.begin(), span.end())
                        : std::move(scratch);
    auto stream_r = EncodedStream::Open(std::move(owned));
    if (!stream_r.ok()) {
      return {Status::IOError("column " + name + ": " +
                              stream_r.status().message())};
    }
    std::shared_ptr<EncodedStream> stream(stream_r.MoveValue());
    if (stream->size() != rows) {
      return {Status::IOError("column " + name + " holds " +
                              std::to_string(stream->size()) +
                              " rows, directory says " +
                              std::to_string(rows))};
    }
    observe::QueryCount(observe::QueryCounter::kCacheBytesRead, blob.length);
    return stream;
  };
}

Result<std::shared_ptr<const LoadedColumn>> LoadPayloadImpl(
    const ColdSource& src, const ColumnCache::BlobReadFn& read,
    bool count_bytes_read, bool lazy_segments,
    observe::Counter* checksum_failures) {
  auto payload = std::make_shared<LoadedColumn>();

  if (src.segments.empty()) {
    payload->compressed_bytes = src.CompressedBytes();
    TDE_ASSIGN_OR_RETURN(
        auto stream_bytes, FetchBlob(src, read, src.stream, "stream",
                                     checksum_failures));
    auto stream_r = EncodedStream::Open(std::move(stream_bytes));
    if (!stream_r.ok()) {
      return {Status::IOError("column " + src.table_name + "." +
                              src.column_name + " stream: " +
                              stream_r.status().message())};
    }
    payload->stream = std::shared_ptr<EncodedStream>(stream_r.MoveValue());
  } else {
    // Segmented (format v3): the shell is built from directory facts; lazy
    // mode defers each segment's blob to first touch so a pruned query
    // faults in only the segments it scans.
    auto seg = std::make_shared<SegmentedStream>();
    uint64_t segment_bytes = 0;
    for (size_t i = 0; i < src.segments.size(); ++i) {
      const ColdSegment& s = src.segments[i];
      if (lazy_segments) {
        TDE_RETURN_NOT_OK(seg->AddCold(
            s.shape, MakeSegmentLoader(src, s, i, checksum_failures)));
      } else {
        TDE_ASSIGN_OR_RETURN(
            auto bytes, FetchBlob(src, read, s.blob, "segment",
                                  checksum_failures));
        auto stream_r = EncodedStream::Open(std::move(bytes));
        if (!stream_r.ok()) {
          return {Status::IOError("column " + src.table_name + "." +
                                  src.column_name + " segment " +
                                  std::to_string(i) + ": " +
                                  stream_r.status().message())};
        }
        std::shared_ptr<EncodedStream> stream(stream_r.MoveValue());
        if (stream->size() != s.shape.rows) {
          return {Status::IOError("column " + src.table_name + "." +
                                  src.column_name + " segment " +
                                  std::to_string(i) + " holds " +
                                  std::to_string(stream->size()) +
                                  " rows, directory says " +
                                  std::to_string(s.shape.rows))};
        }
        TDE_RETURN_NOT_OK(seg->AddSealed(std::move(stream), s.shape.zone));
        segment_bytes += s.blob.length;
      }
    }
    // In lazy mode no segment blob is resident yet, but the shell itself
    // (cold descriptors + loaders) is, and it must carry a nonzero charge:
    // a zero-cost entry would survive any budget, leaving the column
    // permanently "resident" even at budget 0.
    if (lazy_segments) {
      segment_bytes = src.segments.size() * kSegmentShellCharge;
    }
    payload->stream = std::move(seg);
    payload->compressed_bytes = (src.has_heap ? src.heap.length : 0) +
                                (src.has_dict ? src.dict.length : 0) +
                                segment_bytes;
  }
  if (count_bytes_read) {
    observe::QueryCount(observe::QueryCounter::kCacheBytesRead,
                        payload->compressed_bytes);
  }
  if (payload->stream->size() != src.rows) {
    return {Status::IOError("column " + src.table_name + "." +
                            src.column_name + " stream holds " +
                            std::to_string(payload->stream->size()) +
                            " rows, directory says " +
                            std::to_string(src.rows))};
  }

  if (src.has_heap) {
    TDE_ASSIGN_OR_RETURN(
        auto heap_bytes,
        FetchBlob(src, read, src.heap, "heap", checksum_failures));
    payload->heap = std::make_shared<StringHeap>(
        StringHeap::FromParts(std::move(heap_bytes), src.heap_entries,
                              src.heap_sorted, src.heap_collation));
  }

  if (src.has_dict) {
    if (src.dict.length != src.dict_entries * sizeof(Lane)) {
      return {Status::IOError("column " + src.table_name + "." +
                              src.column_name + " dictionary blob is " +
                              std::to_string(src.dict.length) +
                              " bytes, expected " +
                              std::to_string(src.dict_entries) + " entries")};
    }
    TDE_ASSIGN_OR_RETURN(
        auto dict_bytes,
        FetchBlob(src, read, src.dict, "dictionary", checksum_failures));
    auto dict = std::make_shared<ArrayDictionary>();
    dict->type = src.dict_type;
    dict->sorted = src.dict_sorted;
    dict->values.resize(src.dict_entries);
    std::memcpy(dict->values.data(), dict_bytes.data(), dict_bytes.size());
    payload->dict = std::move(dict);
  }
  return {std::shared_ptr<const LoadedColumn>(std::move(payload))};
}

/// Blob reads backed by the cold source's file reader.
ColumnCache::BlobReadFn FileReadFn(const ColdSource& src) {
  return [&src](const BlobRef& ref, std::vector<uint8_t>* scratch) {
    return src.file->Read(ref.offset, ref.length, scratch);
  };
}

}  // namespace

ColumnCache::ColumnCache(uint64_t budget_bytes) : budget_(budget_bytes) {
  auto& reg = observe::MetricsRegistry::Global();
  evictions_ = reg.GetCounter("pager.evictions");
  checksum_failures_ = reg.GetCounter("pager.checksum_failures");
  bytes_resident_gauge_ = reg.GetGauge("pager.bytes_resident");
}

ColumnCache::~ColumnCache() = default;

Result<std::shared_ptr<const LoadedColumn>> ColumnCache::LoadPayloadFrom(
    const ColdSource& src, const BlobReadFn& read) {
  return LoadPayloadImpl(src, read, /*count_bytes_read=*/false,
                         /*lazy_segments=*/false, nullptr);
}

Status ColumnCache::Ensure(const Column* col) {
  const ColdSource* src = col->cold_source();
  if (src == nullptr) return Status::OK();  // hot columns are never cached
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (col->resident()) {
        observe::QueryCount(observe::QueryCounter::kCacheHits);
        auto it = entries_.find(col);
        if (it != entries_.end()) {
          lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        }
        return Status::OK();
      }
      // One loader per column: the first toucher claims the slot, racers
      // wait on the condvar and re-check. Touches of *other* columns —
      // LRU hits or their own loads — proceed unblocked.
      if (loading_.insert(col).second) break;
      load_cv_.wait(lock);
    }
    observe::QueryCount(observe::QueryCounter::kCacheMisses);
  }

  // Blob fetch, checksum and decode run outside the cache lock, so one slow
  // cold materialization never serializes unrelated queries.
  auto payload_r = LoadPayloadImpl(*src, FileReadFn(*src),
                                   /*count_bytes_read=*/true,
                                   /*lazy_segments=*/true,
                                   checksum_failures_);
  if (payload_r.ok() && (*payload_r.value()).stream->segmented()) {
    // Segment fault-ins charge the cache as they happen. The cache outlives
    // every column it serves (each ColdSource holds a shared_ptr to it), so
    // capturing `this` raw mirrors the raw Column* keys in `entries_`.
    auto* seg = static_cast<SegmentedStream*>((*payload_r.value()).stream.get());
    seg->set_charge_hook(
        [this, col](uint64_t bytes) { AddSegmentBytes(col, bytes); });
  }

  std::lock_guard<std::mutex> lock(mu_);
  loading_.erase(col);
  load_cv_.notify_all();
  if (!payload_r.ok()) return payload_r.status();
  auto payload = payload_r.MoveValue();
  const uint64_t bytes = payload->compressed_bytes;
  col->SetResident(std::move(payload));
  auto it = entries_.find(col);
  if (it == entries_.end()) {
    lru_.push_front(col);
    entries_[col] = Entry{lru_.begin(), bytes};
    bytes_resident_ += bytes;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    bytes_resident_ += bytes - it->second.bytes;
    it->second.bytes = bytes;
  }
  EvictLocked(/*keep=*/col);
  bytes_resident_gauge_->Set(static_cast<int64_t>(bytes_resident_));
  return Status::OK();
}

void ColumnCache::EvictLocked(const Column* keep) {
  // One pass from the cold end. Pinned payloads are skipped — they stay
  // charged against the budget until their queries finish.
  auto it = lru_.end();
  while (bytes_resident_ > budget_ && it != lru_.begin()) {
    --it;
    const Column* victim = *it;
    if (victim == keep) continue;
    if (!victim->TryUnload()) {
      // Whole-column eviction blocked (a query pins the payload). A
      // segmented column can still shed individual cold segments nobody is
      // reading right now.
      const uint64_t freed = victim->ReleaseEvictableSegments();
      if (freed > 0) {
        auto e = entries_.find(victim);
        if (e != entries_.end()) {
          const uint64_t delta = std::min(freed, e->second.bytes);
          e->second.bytes -= delta;
          bytes_resident_ -= delta;
          evictions_->Add();
        }
      }
      continue;
    }
    auto e = entries_.find(victim);
    bytes_resident_ -= e->second.bytes;
    it = lru_.erase(it);
    entries_.erase(e);
    evictions_->Add();
  }
}

void ColumnCache::AddSegmentBytes(const Column* col, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(col);
  if (it == entries_.end()) return;  // warmed/forgotten — not ours to track
  it->second.bytes += bytes;
  bytes_resident_ += bytes;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  EvictLocked(/*keep=*/col);
  bytes_resident_gauge_->Set(static_cast<int64_t>(bytes_resident_));
}

void ColumnCache::Forget(const Column* col) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(col);
  if (it == entries_.end()) return;
  bytes_resident_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  bytes_resident_gauge_->Set(static_cast<int64_t>(bytes_resident_));
}

uint64_t ColumnCache::bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_resident_;
}

uint64_t ColumnCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

std::vector<ColumnCache::EntrySnapshot> ColumnCache::EntriesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntrySnapshot> out;
  out.reserve(lru_.size());
  for (const Column* col : lru_) {
    auto it = entries_.find(col);
    out.push_back({col, it != entries_.end() ? it->second.bytes : 0});
  }
  return out;
}

void ColumnCache::set_budget_bytes(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  EvictLocked(nullptr);
  bytes_resident_gauge_->Set(static_cast<int64_t>(bytes_resident_));
}

}  // namespace pager
}  // namespace tde
