#include "src/storage/segment/segment.h"

#include <algorithm>
#include <cstdlib>

namespace tde {

uint64_t DefaultSegmentRows() {
  const char* env = std::getenv("TDE_SEGMENT_ROWS");
  if (env == nullptr || *env == '\0') return kDefaultSegmentRows;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return kDefaultSegmentRows;
  return static_cast<uint64_t>(v);
}

std::vector<RowRange> NormalizeRanges(std::vector<RowRange> ranges) {
  std::erase_if(ranges, [](const RowRange& r) { return r.end <= r.begin; });
  std::sort(ranges.begin(), ranges.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  std::vector<RowRange> out;
  for (const RowRange& r : ranges) {
    if (!out.empty() && r.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, r.end);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<RowRange> ComplementRanges(const std::vector<RowRange>& skip,
                                       uint64_t rows) {
  std::vector<RowRange> out;
  uint64_t at = 0;
  for (const RowRange& r : skip) {
    if (r.begin > at) out.push_back({at, std::min(r.begin, rows)});
    at = std::max(at, r.end);
    if (at >= rows) break;
  }
  if (at < rows) out.push_back({at, rows});
  return out;
}

}  // namespace tde
