#ifndef TDE_STORAGE_SEGMENT_SEGMENTED_STREAM_H_
#define TDE_STORAGE_SEGMENT_SEGMENTED_STREAM_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/encoding/dynamic_encoder.h"
#include "src/encoding/stream.h"
#include "src/storage/segment/segment.h"

namespace tde {

/// A column stored as an ordered list of independently-encoded segments.
///
/// Presents the EncodedStream interface so every consumer (scans, index
/// builds, serializers, the cache) sees one logical stream, while each
/// segment keeps its own dynamic-encoding choice, its own zone map, and —
/// for lazily-opened v3 files — its own pager blob that faults in only
/// when a read actually touches it.
///
/// Lifecycle (DESIGN.md "segment lifecycle"): values Append() into an
/// uncompressed in-memory *open tail*; once the tail reaches the target
/// row count a full chunk is *sealed* — run through the dynamic encoder,
/// zone-mapped, immutable from then on. Finalize() seals the remainder.
/// Sealed segments are *optimized* in place by the usual Sect. 3.4 header
/// manipulations (width narrowing, heap sorting), applied per segment.
///
/// Thread safety: concurrent reads (Get/GetRuns/GetCodes), cold-segment
/// faulting, and segment release are safe against each other. Append and
/// Finalize must not run concurrently with reads of the same column —
/// the same single-writer contract every other stream has.
class SegmentedStream : public EncodedStream {
 public:
  /// Loads one cold segment's stream from its pager blob. Invoked without
  /// internal locks held; must be safe to call from any thread.
  using Loader = std::function<Result<std::shared_ptr<EncodedStream>>()>;
  /// Notifies the column cache that `bytes` just became resident (segment
  /// fault-in). Called without internal locks held.
  using ChargeHook = std::function<void(uint64_t bytes)>;

  /// `options` parameterizes the dynamic encoder used to seal segments;
  /// `target_rows` is the sealing threshold (0 = TDE_SEGMENT_ROWS /
  /// default).
  explicit SegmentedStream(DynamicEncoderOptions options = {},
                           uint64_t target_rows = 0);

  /// Adopts an already-encoded stream as the next sealed segment. The
  /// zone should describe exactly the stream's rows.
  Status AddSealed(std::shared_ptr<EncodedStream> stream, SegmentZone zone);

  /// Adds a cold (on-disk) segment: directory facts now, payload on first
  /// touch. `shape.start_row` is recomputed; the rest is trusted.
  Status AddCold(const SegmentShape& shape, Loader loader);

  /// Installs the cache-accounting hook for cold-segment fault-ins.
  void set_charge_hook(ChargeHook hook);

  /// The dynamic-encoder configuration segments seal under. A re-encode of
  /// the whole column (e.g. the v1 writer's monolithic collapse) must use
  /// this, not defaults, or an encodings-off column would silently come
  /// back compressed.
  const DynamicEncoderOptions& encoder_options() const { return options_; }

  // EncodedStream interface ------------------------------------------------
  Status Append(const Lane* values, size_t count) override;
  Status Finalize() override;
  Status Get(uint64_t row, size_t count, Lane* out) const override;
  Status GetRuns(std::vector<RleRun>* out) const override;
  bool GetCodes(uint64_t row, size_t count, Lane* out) const override;
  std::vector<Lane> CodeEntries() const override;
  uint64_t size() const override;
  uint64_t PhysicalSize() const override;
  uint64_t ProjectedPhysicalSize() const override;
  uint8_t TokenWidthBytes() const override;
  bool segmented() const override { return true; }

  // Segment-level interface ------------------------------------------------
  /// Number of segments, the open tail included when non-empty.
  size_t segment_count() const;
  /// True when unsealed appended rows exist.
  bool has_open_tail() const;
  /// Shape snapshot of every segment (tail last, open_tail = true).
  /// Answers from directory facts for cold segments — never faults.
  std::vector<SegmentShape> Shapes() const;

  /// The decoded stream of sealed/cold segment `idx` (faults a cold one
  /// in). The returned shared_ptr pins the payload; a concurrent release
  /// cannot free it mid-read. Errors for the open tail.
  Result<std::shared_ptr<EncodedStream>> SegmentStreamForRead(
      size_t idx) const;

  /// Drops faulted cold-segment payloads nobody is reading (shared_ptr
  /// use-count of one) and returns the bytes freed. Called by the column
  /// cache under its own lock — must not call hooks back into the cache.
  uint64_t ReleaseColdSegments();

  /// Encodes a copy of the open tail without sealing it (const
  /// serialization of a database with in-progress appends). Errors if the
  /// tail is empty.
  Result<std::shared_ptr<EncodedStream>> EncodeTailCopy(
      SegmentZone* zone) const;

  /// Recomputes per-segment facts and the synthetic header after in-place
  /// segment-buffer manipulations (width narrowing, dictionary remaps).
  void RefreshSegmentFacts();

  /// Mutable buffer of resident sealed segment `idx` for the Sect. 3.4
  /// in-place manipulations; nullptr for cold or tail segments. Call
  /// RefreshSegmentFacts() when done.
  std::vector<uint8_t>* MutableSegmentBuffer(size_t idx);

  /// Total re-encode count across all seals (import telemetry).
  int encoding_changes() const;
  /// Total bytes written by segment encoders, rewrites included.
  uint64_t bytes_written() const;

 private:
  struct Slot {
    SegmentShape shape;
    std::shared_ptr<EncodedStream> stream;  // null while cold
    Loader loader;                          // set for cold segments
    bool cold = false;
    bool loading = false;
  };

  Status SealLocked(const Lane* values, uint64_t count);
  void RefreshHeaderLocked();
  Result<std::shared_ptr<EncodedStream>> StreamAtLocked(
      std::unique_lock<std::mutex>* lock, size_t idx) const;
  /// Index of the slot containing `row`; slots_.size() for tail rows.
  size_t SlotForRowLocked(uint64_t row) const;
  Status EnsureCodeTableLocked(std::unique_lock<std::mutex>* lock) const;

  DynamicEncoderOptions options_;
  uint64_t target_rows_;
  ChargeHook charge_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<Slot> slots_;
  uint64_t sealed_rows_ = 0;
  std::vector<Lane> tail_;
  int changes_ = 0;
  uint64_t bytes_written_ = 0;

  struct CodeTable {
    bool valid = false;
    std::vector<Lane> entries;             // global code -> decoded lane
    std::vector<std::vector<Lane>> remap;  // per segment: local -> global
  };
  mutable std::optional<CodeTable> codes_;
};

}  // namespace tde

#endif  // TDE_STORAGE_SEGMENT_SEGMENTED_STREAM_H_
