#ifndef TDE_STORAGE_SEGMENT_SEGMENT_BUILDER_H_
#define TDE_STORAGE_SEGMENT_SEGMENT_BUILDER_H_

#include <memory>

#include "src/encoding/dynamic_encoder.h"
#include "src/storage/segment/segment.h"

namespace tde {

/// One freshly-sealed segment: the encoded stream plus the zone map its
/// own EncodingStats produced.
struct SealedSegment {
  std::shared_ptr<EncodedStream> stream;
  SegmentZone zone;
  int encoding_changes = 0;
  uint64_t bytes_written = 0;
};

/// Runs `count` lanes through a fresh dynamic encoder: each segment makes
/// its own encoding choice from its own local statistics (the per-block
/// selection insight — local distributions compress better than global
/// ones).
Result<SealedSegment> EncodeSegment(const Lane* values, uint64_t count,
                                    const DynamicEncoderOptions& options);

/// Decodes `stream` fully and re-encodes it as one monolithic stream —
/// the fallback for writers that require a single serialized buffer (the
/// eager v1 file format).
Result<std::unique_ptr<EncodedStream>> MaterializeMonolithic(
    const EncodedStream& stream, DynamicEncoderOptions options);

}  // namespace tde

#endif  // TDE_STORAGE_SEGMENT_SEGMENT_BUILDER_H_
