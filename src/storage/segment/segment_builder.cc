#include "src/storage/segment/segment_builder.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace tde {

Result<SealedSegment> EncodeSegment(const Lane* values, uint64_t count,
                                    const DynamicEncoderOptions& options) {
  DynamicEncoder encoder(options);
  // Feed in kBlockSize chunks so the encoder's stats lead each insert,
  // exactly like the monolithic build path.
  for (uint64_t at = 0; at < count; at += kBlockSize) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(kBlockSize, count - at));
    TDE_RETURN_NOT_OK(encoder.Append(values + at, n));
  }
  TDE_ASSIGN_OR_RETURN(EncodedColumn col, encoder.Finalize());
  SealedSegment out;
  out.stream = std::shared_ptr<EncodedStream>(std::move(col.stream));
  out.zone.meta = ExtractMetadata(col.stats);
  out.zone.null_count = static_cast<int64_t>(col.stats.null_count());
  out.encoding_changes = col.encoding_changes;
  out.bytes_written = col.bytes_written;
  return out;
}

Result<std::unique_ptr<EncodedStream>> MaterializeMonolithic(
    const EncodedStream& stream, DynamicEncoderOptions options) {
  DynamicEncoder encoder(options);
  const uint64_t rows = stream.size();
  Lane block[kBlockSize];
  for (uint64_t at = 0; at < rows; at += kBlockSize) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(kBlockSize, rows - at));
    TDE_RETURN_NOT_OK(stream.Get(at, n, block));
    TDE_RETURN_NOT_OK(encoder.Append(block, n));
  }
  TDE_ASSIGN_OR_RETURN(EncodedColumn col, encoder.Finalize());
  return {std::move(col.stream)};
}

}  // namespace tde
