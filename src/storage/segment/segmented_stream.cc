#include "src/storage/segment/segmented_stream.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/storage/segment/segment_builder.h"

namespace tde {

SegmentedStream::SegmentedStream(DynamicEncoderOptions options,
                                 uint64_t target_rows)
    : options_(options),
      target_rows_(target_rows == 0 ? DefaultSegmentRows() : target_rows) {
  // Synthetic Fig.-1 header: the non-virtual type()/width()/bits()
  // accessors read it, so consumers keyed on the encoding (the strategic
  // rewrites, introspection) see the representative segment encoding. No
  // packed data ever follows it.
  buf_.assign(HeaderView::kExtraOffset, 0);
  HeaderView h(&buf_);
  h.set_data_offset(HeaderView::kExtraOffset);
  h.set_block_size(kBlockSize);
  h.set_algorithm(EncodingType::kSegmented);
  h.set_width(options_.width);
  h.set_bits(0);
}

void SegmentedStream::set_charge_hook(ChargeHook hook) {
  charge_ = std::move(hook);
}

Status SegmentedStream::AddSealed(std::shared_ptr<EncodedStream> stream,
                                  SegmentZone zone) {
  if (stream == nullptr || stream->size() == 0) {
    return Status::InvalidArgument("sealed segment must have rows");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!tail_.empty()) {
    return Status::InvalidArgument(
        "cannot add sealed segments behind an open tail");
  }
  Slot s;
  s.shape.start_row = sealed_rows_;
  s.shape.rows = stream->size();
  s.shape.encoding = stream->type();
  s.shape.width = stream->width();
  s.shape.bits = stream->bits();
  s.shape.token_width = stream->TokenWidthBytes();
  s.shape.physical_bytes = stream->PhysicalSize();
  s.shape.resident = true;
  s.shape.zone = std::move(zone);
  s.stream = std::move(stream);
  sealed_rows_ += s.shape.rows;
  slots_.push_back(std::move(s));
  codes_.reset();
  RefreshHeaderLocked();
  return Status::OK();
}

Status SegmentedStream::AddCold(const SegmentShape& shape, Loader loader) {
  if (shape.rows == 0) {
    return Status::InvalidArgument("cold segment must have rows");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!tail_.empty()) {
    return Status::InvalidArgument(
        "cannot add cold segments behind an open tail");
  }
  Slot s;
  s.shape = shape;
  s.shape.start_row = sealed_rows_;
  s.shape.resident = false;
  s.shape.open_tail = false;
  s.cold = true;
  s.loader = std::move(loader);
  sealed_rows_ += s.shape.rows;
  slots_.push_back(std::move(s));
  codes_.reset();
  RefreshHeaderLocked();
  return Status::OK();
}

Status SegmentedStream::Append(const Lane* values, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  tail_.insert(tail_.end(), values, values + count);
  size_t at = 0;
  while (tail_.size() - at >= target_rows_) {
    TDE_RETURN_NOT_OK(SealLocked(tail_.data() + at, target_rows_));
    at += target_rows_;
  }
  if (at > 0) {
    tail_.erase(tail_.begin(),
                tail_.begin() + static_cast<ptrdiff_t>(at));
  }
  codes_.reset();
  RefreshHeaderLocked();
  return Status::OK();
}

Status SegmentedStream::Finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tail_.empty()) {
    TDE_RETURN_NOT_OK(SealLocked(tail_.data(), tail_.size()));
    tail_.clear();
  }
  RefreshHeaderLocked();
  return Status::OK();
}

Status SegmentedStream::SealLocked(const Lane* values, uint64_t count) {
  TDE_ASSIGN_OR_RETURN(SealedSegment sealed,
                       EncodeSegment(values, count, options_));
  Slot s;
  s.shape.start_row = sealed_rows_;
  s.shape.rows = count;
  s.shape.encoding = sealed.stream->type();
  s.shape.width = sealed.stream->width();
  s.shape.bits = sealed.stream->bits();
  s.shape.token_width = sealed.stream->TokenWidthBytes();
  s.shape.physical_bytes = sealed.stream->PhysicalSize();
  s.shape.resident = true;
  s.shape.zone = sealed.zone;
  s.stream = std::move(sealed.stream);
  sealed_rows_ += count;
  changes_ += sealed.encoding_changes;
  bytes_written_ += sealed.bytes_written;
  slots_.push_back(std::move(s));
  codes_.reset();
  return Status::OK();
}

void SegmentedStream::RefreshHeaderLocked() {
  HeaderView h(&buf_);
  h.set_logical_size(sealed_rows_ + tail_.size());
  EncodingType rep = EncodingType::kSegmented;
  if (!slots_.empty() && tail_.empty()) {
    rep = slots_.front().shape.encoding;
    for (const Slot& s : slots_) {
      if (s.shape.encoding != rep) {
        rep = EncodingType::kSegmented;
        break;
      }
    }
  }
  h.set_algorithm(rep);
  uint8_t width = options_.width;
  uint8_t bits = 0;
  for (const Slot& s : slots_) {
    width = std::max(width, s.shape.width);
    bits = std::max(bits, s.shape.bits);
  }
  h.set_width(width);
  h.set_bits(bits);
}

size_t SegmentedStream::SlotForRowLocked(uint64_t row) const {
  if (row >= sealed_rows_) return slots_.size();
  size_t lo = 0, hi = slots_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (slots_[mid].shape.start_row <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::shared_ptr<EncodedStream>> SegmentedStream::StreamAtLocked(
    std::unique_lock<std::mutex>* lock, size_t idx) const {
  for (;;) {
    Slot& s = const_cast<Slot&>(slots_[idx]);
    if (s.stream != nullptr) return {std::shared_ptr<EncodedStream>(s.stream)};
    if (!s.loading) {
      s.loading = true;
      break;
    }
    cv_.wait(*lock);
  }
  Loader loader = slots_[idx].loader;
  lock->unlock();
  Result<std::shared_ptr<EncodedStream>> loaded =
      loader ? loader()
             : Result<std::shared_ptr<EncodedStream>>(
                   Status::Internal("cold segment has no loader"));
  lock->lock();
  Slot& s = const_cast<Slot&>(slots_[idx]);
  s.loading = false;
  cv_.notify_all();
  if (!loaded.ok()) return {loaded.status()};
  std::shared_ptr<EncodedStream> result;
  if (s.stream == nullptr) {
    s.stream = loaded.value();
    s.shape.resident = true;
    result = s.stream;
    if (charge_) {
      // Lock order is cache -> stream, so the accounting hook (which takes
      // the cache lock) must not run under mu_. `result` pins the payload
      // across the gap.
      const uint64_t bytes = s.shape.physical_bytes;
      ChargeHook hook = charge_;
      lock->unlock();
      hook(bytes);
      lock->lock();
    }
  } else {
    result = s.stream;
  }
  return {std::move(result)};
}

Status SegmentedStream::Get(uint64_t row, size_t count, Lane* out) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (row + count > sealed_rows_ + tail_.size()) {
    return Status::InvalidArgument("segmented read past end of stream");
  }
  while (count > 0) {
    if (row >= sealed_rows_) {
      const uint64_t off = row - sealed_rows_;
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(count, tail_.size() - off));
      std::copy_n(tail_.begin() + static_cast<ptrdiff_t>(off), n, out);
      return Status::OK();
    }
    const size_t si = SlotForRowLocked(row);
    const uint64_t seg_start = slots_[si].shape.start_row;
    const uint64_t seg_rows = slots_[si].shape.rows;
    TDE_ASSIGN_OR_RETURN(std::shared_ptr<EncodedStream> stream,
                         StreamAtLocked(&lock, si));
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(count, seg_start + seg_rows - row));
    lock.unlock();
    TDE_RETURN_NOT_OK(stream->Get(row - seg_start, n, out));
    row += n;
    out += n;
    count -= n;
    lock.lock();
  }
  return Status::OK();
}

Status SegmentedStream::GetRuns(std::vector<RleRun>* out) const {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  const size_t num_slots = slots_.size();
  for (size_t si = 0; si < num_slots; ++si) {
    TDE_ASSIGN_OR_RETURN(std::shared_ptr<EncodedStream> stream,
                         StreamAtLocked(&lock, si));
    lock.unlock();
    std::vector<RleRun> seg;
    TDE_RETURN_NOT_OK(stream->GetRuns(&seg));
    for (const RleRun& r : seg) {
      if (!out->empty() && out->back().value == r.value) {
        out->back().count += r.count;  // merge across the boundary
      } else {
        out->push_back(r);
      }
    }
    lock.lock();
  }
  for (const Lane v : tail_) {
    if (!out->empty() && out->back().value == v) {
      ++out->back().count;
    } else {
      out->push_back({v, 1});
    }
  }
  return Status::OK();
}

Status SegmentedStream::EnsureCodeTableLocked(
    std::unique_lock<std::mutex>* lock) const {
  if (codes_.has_value()) {
    return codes_->valid ? Status::OK()
                         : Status::InvalidArgument("not dictionary coded");
  }
  CodeTable table;
  bool eligible = !slots_.empty() && tail_.empty();
  for (const Slot& s : slots_) {
    if (s.shape.encoding != EncodingType::kDictionary) {
      eligible = false;
      break;
    }
  }
  if (!eligible) {
    codes_.emplace(std::move(table));  // valid = false
    return Status::InvalidArgument("not dictionary coded");
  }
  // Build the global union code table: one entry per distinct decoded
  // lane, plus a local-code -> global-code remap per segment. Faults every
  // segment in — the dictionary-grouping rewrite reads the whole column
  // anyway.
  std::unordered_map<Lane, Lane> global;
  table.remap.resize(slots_.size());
  for (size_t si = 0; si < slots_.size(); ++si) {
    TDE_ASSIGN_OR_RETURN(std::shared_ptr<EncodedStream> stream,
                         StreamAtLocked(lock, si));
    lock->unlock();
    const std::vector<Lane> entries = stream->CodeEntries();
    lock->lock();
    std::vector<Lane>& remap = table.remap[si];
    remap.reserve(entries.size());
    for (const Lane e : entries) {
      auto [it, inserted] =
          global.emplace(e, static_cast<Lane>(table.entries.size()));
      if (inserted) table.entries.push_back(e);
      remap.push_back(it->second);
    }
  }
  table.valid = true;
  codes_.emplace(std::move(table));
  return Status::OK();
}

bool SegmentedStream::GetCodes(uint64_t row, size_t count, Lane* out) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (row + count > sealed_rows_) return false;
  if (!EnsureCodeTableLocked(&lock).ok()) return false;
  while (count > 0) {
    const size_t si = SlotForRowLocked(row);
    const uint64_t seg_start = slots_[si].shape.start_row;
    const uint64_t seg_rows = slots_[si].shape.rows;
    Result<std::shared_ptr<EncodedStream>> stream = StreamAtLocked(&lock, si);
    if (!stream.ok()) return false;
    const std::vector<Lane>& remap = codes_->remap[si];
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(count, seg_start + seg_rows - row));
    lock.unlock();
    if (!stream.value()->GetCodes(row - seg_start, n, out)) return false;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t local = static_cast<uint64_t>(out[i]);
      if (local >= remap.size()) return false;
      out[i] = remap[local];
    }
    row += n;
    out += n;
    count -= n;
    lock.lock();
  }
  return true;
}

std::vector<Lane> SegmentedStream::CodeEntries() const {
  std::unique_lock<std::mutex> lock(mu_);
  if (!EnsureCodeTableLocked(&lock).ok()) return {};
  return codes_->entries;
}

uint64_t SegmentedStream::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_rows_ + tail_.size();
}

uint64_t SegmentedStream::PhysicalSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = buf_.size();
  for (const Slot& s : slots_) n += s.shape.physical_bytes;
  return n;
}

uint64_t SegmentedStream::ProjectedPhysicalSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = buf_.size();
  for (const Slot& s : slots_) n += s.shape.physical_bytes;
  // The open tail is unencoded; project it at full lane width.
  if (!tail_.empty()) {
    n += HeaderView::kExtraOffset + tail_.size() * options_.width;
  }
  return n;
}

uint8_t SegmentedStream::TokenWidthBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t w = tail_.empty() ? 0 : uint8_t{8};
  for (const Slot& s : slots_) w = std::max(w, s.shape.token_width);
  return w == 0 ? options_.width : w;
}

size_t SegmentedStream::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size() + (tail_.empty() ? 0 : 1);
}

bool SegmentedStream::has_open_tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !tail_.empty();
}

std::vector<SegmentShape> SegmentedStream::Shapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentShape> out;
  out.reserve(slots_.size() + 1);
  for (const Slot& s : slots_) out.push_back(s.shape);
  if (!tail_.empty()) {
    SegmentShape t;
    t.start_row = sealed_rows_;
    t.rows = tail_.size();
    t.encoding = EncodingType::kUncompressed;
    t.width = options_.width;
    t.bits = 0;
    t.token_width = 8;
    t.physical_bytes = 0;
    t.resident = true;
    t.open_tail = true;
    EncodingStats stats;
    stats.Update(tail_.data(), tail_.size());
    t.zone.meta = ExtractMetadata(stats);
    t.zone.null_count = static_cast<int64_t>(stats.null_count());
    out.push_back(t);
  }
  return out;
}

Result<std::shared_ptr<EncodedStream>> SegmentedStream::SegmentStreamForRead(
    size_t idx) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (idx >= slots_.size()) {
    return {Status::InvalidArgument("segment index out of range")};
  }
  return StreamAtLocked(&lock, idx);
}

uint64_t SegmentedStream::ReleaseColdSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t freed = 0;
  for (Slot& s : slots_) {
    if (s.cold && s.stream != nullptr && !s.loading &&
        s.stream.use_count() == 1) {
      s.stream.reset();
      s.shape.resident = false;
      freed += s.shape.physical_bytes;
    }
  }
  return freed;
}

Result<std::shared_ptr<EncodedStream>> SegmentedStream::EncodeTailCopy(
    SegmentZone* zone) const {
  std::vector<Lane> tail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tail_.empty()) {
      return {Status::InvalidArgument("no open tail to encode")};
    }
    tail = tail_;
  }
  TDE_ASSIGN_OR_RETURN(SealedSegment sealed,
                       EncodeSegment(tail.data(), tail.size(), options_));
  if (zone != nullptr) *zone = sealed.zone;
  return {std::move(sealed.stream)};
}

void SegmentedStream::RefreshSegmentFacts() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.stream == nullptr) continue;
    s.shape.encoding = s.stream->type();
    s.shape.width = s.stream->width();
    s.shape.bits = s.stream->bits();
    s.shape.token_width = s.stream->TokenWidthBytes();
    s.shape.physical_bytes = s.stream->PhysicalSize();
  }
  codes_.reset();
  RefreshHeaderLocked();
}

std::vector<uint8_t>* SegmentedStream::MutableSegmentBuffer(size_t idx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idx >= slots_.size()) return nullptr;
  Slot& s = slots_[idx];
  if (s.cold || s.stream == nullptr) return nullptr;
  codes_.reset();
  return s.stream->mutable_buffer();
}

int SegmentedStream::encoding_changes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return changes_;
}

uint64_t SegmentedStream::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace tde
