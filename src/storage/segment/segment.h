#ifndef TDE_STORAGE_SEGMENT_SEGMENT_H_
#define TDE_STORAGE_SEGMENT_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "src/encoding/header.h"
#include "src/encoding/metadata.h"

namespace tde {

/// A half-open row interval [begin, end) of a table scan. Segment pruning
/// and the exchange partitioner express their decisions as lists of these.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t rows() const { return end - begin; }
};

/// Per-segment zone map (the paper's Sect. 3.4.2 metadata, kept at segment
/// rather than column granularity): min/max/cardinality/sorted derived from
/// the segment's own EncodingStats, plus the NULL-sentinel count.
/// `null_count < 0` means unknown (a monolithic column adopted as one
/// sealed segment only knows has_nulls).
struct SegmentZone {
  ColumnMetadata meta;
  int64_t null_count = -1;
};

/// The externally visible shape of one segment: where it sits in the
/// column, how it is physically encoded, and its zone map. Answerable from
/// directory facts alone — building a list of these never faults data in.
struct SegmentShape {
  uint64_t start_row = 0;
  uint64_t rows = 0;
  EncodingType encoding = EncodingType::kUncompressed;
  uint8_t width = 8;
  uint8_t bits = 0;
  uint8_t token_width = 8;
  /// Serialized bytes of the segment's stream blob (0 while the tail is
  /// still open and unencoded).
  uint64_t physical_bytes = 0;
  /// Whether the segment's decoded stream is in memory right now.
  bool resident = true;
  /// True for the open (still appendable, not yet encoded) tail segment.
  bool open_tail = false;
  SegmentZone zone;
};

/// Rows per sealed segment: the TDE_SEGMENT_ROWS environment knob, or the
/// 64K default. A value of 0 (or garbage) falls back to the default.
uint64_t DefaultSegmentRows();

/// The compiled-in default for TDE_SEGMENT_ROWS.
inline constexpr uint64_t kDefaultSegmentRows = 65536;

/// Merges overlapping/adjacent ranges and drops empty ones; the result is
/// sorted and disjoint.
std::vector<RowRange> NormalizeRanges(std::vector<RowRange> ranges);

/// Complements `skip` (sorted, disjoint) over [0, rows): the ranges a scan
/// must still visit. An empty skip list yields the single full range.
std::vector<RowRange> ComplementRanges(const std::vector<RowRange>& skip,
                                       uint64_t rows);

}  // namespace tde

#endif  // TDE_STORAGE_SEGMENT_SEGMENT_H_
