#ifndef TDE_STORAGE_STRING_HEAP_H_
#define TDE_STORAGE_STRING_HEAP_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/collation.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace tde {

/// Variable-width string storage (the TDE's "heap" compression,
/// Sect. 2.3.2). Each element is a 4-byte length followed by the bytes; a
/// string token is the element's byte offset. Tokens of a *sorted* heap are
/// directly comparable — comparing tokens is comparing strings — which is
/// the payoff Sect. 6.3 measures, because it replaces expensive
/// locale-sensitive comparisons with integer comparisons.
class StringHeap {
 public:
  explicit StringHeap(Collation collation = Collation::kLocale)
      : collation_(collation) {}

  /// Appends a string and returns its token (byte offset). No
  /// deduplication — that is the HeapAccelerator's job.
  Lane Add(std::string_view s);

  /// Resolves a token.
  std::string_view Get(Lane token) const;

  /// Compares two tokens' strings. O(1) integer comparison when the heap
  /// is sorted, a full collation otherwise.
  int CompareTokens(Lane a, Lane b) const;

  uint64_t byte_size() const { return buf_.size(); }
  uint64_t entry_count() const { return entries_; }

  /// All element tokens in heap (insertion) order — the token column of a
  /// DictionaryTable (Sect. 4.1.1).
  std::vector<Lane> AllTokens() const;

  /// Whether element order equals collation order.
  bool sorted() const { return sorted_; }
  void set_sorted(bool v) { sorted_ = v; }

  Collation collation() const { return collation_; }

  const std::vector<uint8_t>& buffer() const { return buf_; }

  /// Restores a heap from serialized parts.
  static StringHeap FromParts(std::vector<uint8_t> buf, uint64_t entries,
                              bool sorted, Collation collation);

 private:
  std::vector<uint8_t> buf_;
  uint64_t entries_ = 0;
  bool sorted_ = false;
  Collation collation_;
};

}  // namespace tde

#endif  // TDE_STORAGE_STRING_HEAP_H_
