#include "src/storage/table.h"

namespace tde {

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->name() == name) return i;
  }
  return {Status::NotFound("table '" + name_ + "' has no column '" + name +
                           "'")};
}

Result<std::shared_ptr<Column>> Table::ColumnByName(
    const std::string& name) const {
  TDE_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
  return columns_[i];
}

Schema Table::GetSchema() const {
  Schema s;
  for (const auto& c : columns_) {
    s.AddField({c->name(), c->type()});
  }
  return s;
}

uint64_t Table::PhysicalSize() const {
  uint64_t n = 0;
  for (const auto& c : columns_) n += c->PhysicalSize();
  return n;
}

uint64_t Table::LogicalSize() const {
  uint64_t n = 0;
  for (const auto& c : columns_) n += c->LogicalSize();
  return n;
}

}  // namespace tde
