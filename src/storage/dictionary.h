#ifndef TDE_STORAGE_DICTIONARY_H_
#define TDE_STORAGE_DICTIONARY_H_

#include <vector>

#include "src/common/types.h"

namespace tde {

/// A fixed-width compression dictionary (the TDE's "array" compression,
/// Sect. 2.3.2): the main column stores indexes into `values`. Produced by
/// the encoding-becomes-compression manipulation (Sect. 3.4.3), e.g. for
/// date columns whose expensive calculations should run once per domain
/// value and be joined back invisibly.
struct ArrayDictionary {
  TypeId type = TypeId::kInteger;
  std::vector<Lane> values;
  /// Index order equals value order (tokens are comparable).
  bool sorted = false;
};

}  // namespace tde

#endif  // TDE_STORAGE_DICTIONARY_H_
