#ifndef TDE_STORAGE_SCHEMA_H_
#define TDE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace tde {

/// A named, typed field.
struct Field {
  std::string name;
  TypeId type;
};

/// An ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the field named `name`, or an error.
  Result<size_t> FieldIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace tde

#endif  // TDE_STORAGE_SCHEMA_H_
