#include "src/storage/schema.h"

namespace tde {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return {Status::NotFound("no field named '" + name + "'")};
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) s += ", ";
    s += fields_[i].name;
    s += ": ";
    s += TypeName(fields_[i].type);
  }
  s += ")";
  return s;
}

}  // namespace tde
