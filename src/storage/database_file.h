#ifndef TDE_STORAGE_DATABASE_FILE_H_
#define TDE_STORAGE_DATABASE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/table.h"

namespace tde {

/// An in-memory database: a set of named tables.
class Database {
 public:
  size_t num_tables() const { return tables_.size(); }
  const std::vector<std::shared_ptr<Table>>& tables() const { return tables_; }
  void AddTable(std::shared_ptr<Table> t) { tables_.push_back(std::move(t)); }
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  /// Replaces the table with the same name (error if absent).
  Status ReplaceTable(std::shared_ptr<Table> t);

  uint64_t PhysicalSize() const;
  uint64_t LogicalSize() const;

 private:
  std::vector<std::shared_ptr<Table>> tables_;
};

/// Single-file database format (Sect. 2.3.3): a TDE database must be
/// choosable in a file dialog, i.e. one file. Column-level compression
/// directly reduces the unavoidable cost of producing this copy.
///
/// Layout: magic, table directory, then per-column blobs (serialized
/// encoded stream, heap bytes, array dictionary, metadata) — all
/// little-endian.
Status WriteDatabase(const Database& db, const std::string& path);
Result<Database> ReadDatabase(const std::string& path);

/// Serializes to / restores from a byte buffer (the file format without the
/// file), used by tests and by WriteDatabase itself.
void SerializeDatabase(const Database& db, std::vector<uint8_t>* out);
Result<Database> DeserializeDatabase(const std::vector<uint8_t>& bytes);

}  // namespace tde

#endif  // TDE_STORAGE_DATABASE_FILE_H_
