#ifndef TDE_STORAGE_DATABASE_FILE_H_
#define TDE_STORAGE_DATABASE_FILE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/table.h"

namespace tde {

/// An in-memory database: a set of named tables.
///
/// Thread-safe for the reader/replacer mix the engine produces: queries
/// resolve tables to shared_ptr snapshots (GetTable / tables()), so a
/// concurrent ReplaceTable swaps the catalog entry without disturbing
/// readers already executing against the old table — the old table stays
/// alive until its last query releases it.
class Database {
 public:
  Database() = default;
  Database(const Database& other) : tables_(other.Snapshot()) {}
  Database(Database&& other) noexcept : tables_(other.Snapshot()) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      auto copy = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      tables_ = std::move(copy);
    }
    return *this;
  }
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      auto moved = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      tables_ = std::move(moved);
    }
    return *this;
  }

  size_t num_tables() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }
  /// Snapshot of the current table set — safe to iterate while another
  /// thread adds or replaces tables.
  std::vector<std::shared_ptr<Table>> tables() const { return Snapshot(); }
  void AddTable(std::shared_ptr<Table> t) {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.push_back(std::move(t));
  }
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  /// Replaces the table with the same name (error if absent). Queries
  /// holding the old table's shared_ptr keep reading it unharmed.
  Status ReplaceTable(std::shared_ptr<Table> t);

  uint64_t PhysicalSize() const;
  uint64_t LogicalSize() const;

 private:
  std::vector<std::shared_ptr<Table>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tables_;
  }

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Table>> tables_;
};

/// Single-file database format (Sect. 2.3.3): a TDE database must be
/// choosable in a file dialog, i.e. one file. Column-level compression
/// directly reduces the unavoidable cost of producing this copy.
///
/// v1 layout ("TDEDB001"): magic, table directory, then per-column blobs
/// (serialized encoded stream, heap bytes, array dictionary, metadata) —
/// all little-endian, read eagerly and sequentially.
///
/// ReadDatabase / DeserializeDatabase also accept the paged v2 format
/// ("TDEDB002", see src/storage/pager/format.h), materializing every column
/// eagerly. Lazy v2 opens go through Engine::OpenDatabase / OpenDatabaseV2.
Status WriteDatabase(const Database& db, const std::string& path);
Result<Database> ReadDatabase(const std::string& path);

/// Serializes to / restores from a byte buffer (the file format without the
/// file), used by tests and by WriteDatabase itself. Cold (paged) columns
/// are pinned and copied through.
Status SerializeDatabase(const Database& db, std::vector<uint8_t>* out);
Result<Database> DeserializeDatabase(const std::vector<uint8_t>& bytes);

}  // namespace tde

#endif  // TDE_STORAGE_DATABASE_FILE_H_
