#ifndef TDE_STORAGE_HEAP_ACCELERATOR_H_
#define TDE_STORAGE_HEAP_ACCELERATOR_H_

#include <vector>

#include "src/storage/string_heap.h"

namespace tde {

/// The heap accelerator (Sect. 5.1.4): a hash table of every string seen so
/// far, keeping the heap minimal and tokens *distinct* for columns with
/// small (< 2^31) domains. Maintaining the table is an import hot spot, but
/// the reduced disk I/O pays for it. The accelerator gives up once the
/// element count passes the threshold (scaled down here; the TDE's is 2^31).
///
/// It also tracks two fortuitous statistics the paper calls out (Sect. 6.4):
/// the domain cardinality, and whether strings arrived in collation order —
/// the only metadata available when encodings are off.
class HeapAccelerator {
 public:
  /// `heap` must outlive the accelerator.
  explicit HeapAccelerator(StringHeap* heap,
                           uint64_t give_up_threshold = uint64_t{1} << 31);

  /// Returns the token for `s`, appending to the heap only if unseen.
  /// After the accelerator has given up, every call appends.
  Lane Add(std::string_view s);

  /// False once the element threshold was passed.
  bool active() const { return active_; }

  uint64_t distinct_count() const { return distinct_; }

  /// True while strings were inserted in non-descending collation order.
  bool arrived_sorted() const { return arrived_sorted_; }

 private:
  struct Slot {
    Lane token;
    uint64_t hash;
    bool used = false;
  };

  void Grow();
  Lane Probe(std::string_view s, uint64_t hash);

  StringHeap* heap_;
  uint64_t threshold_;
  std::vector<Slot> slots_;
  uint64_t mask_;
  uint64_t distinct_ = 0;
  bool active_ = true;
  bool arrived_sorted_ = true;
  bool have_prev_ = false;
  Lane prev_token_ = 0;
};

}  // namespace tde

#endif  // TDE_STORAGE_HEAP_ACCELERATOR_H_
