file(REMOVE_RECURSE
  "CMakeFiles/bench_rollup.dir/bench_rollup.cc.o"
  "CMakeFiles/bench_rollup.dir/bench_rollup.cc.o.d"
  "bench_rollup"
  "bench_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
