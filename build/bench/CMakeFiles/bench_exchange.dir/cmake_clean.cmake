file(REMOVE_RECURSE
  "CMakeFiles/bench_exchange.dir/bench_exchange.cc.o"
  "CMakeFiles/bench_exchange.dir/bench_exchange.cc.o.d"
  "bench_exchange"
  "bench_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
