# Empty dependencies file for bench_dynamic_encoding.
# This may be replaced when dependencies are built.
