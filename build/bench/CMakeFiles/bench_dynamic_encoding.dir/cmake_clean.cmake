file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_encoding.dir/bench_dynamic_encoding.cc.o"
  "CMakeFiles/bench_dynamic_encoding.dir/bench_dynamic_encoding.cc.o.d"
  "bench_dynamic_encoding"
  "bench_dynamic_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
