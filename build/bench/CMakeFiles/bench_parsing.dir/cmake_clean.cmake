file(REMOVE_RECURSE
  "CMakeFiles/bench_parsing.dir/bench_parsing.cc.o"
  "CMakeFiles/bench_parsing.dir/bench_parsing.cc.o.d"
  "bench_parsing"
  "bench_parsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
