# Empty compiler generated dependencies file for bench_parsing.
# This may be replaced when dependencies are built.
