file(REMOVE_RECURSE
  "CMakeFiles/bench_hash_ablation.dir/bench_hash_ablation.cc.o"
  "CMakeFiles/bench_hash_ablation.dir/bench_hash_ablation.cc.o.d"
  "bench_hash_ablation"
  "bench_hash_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
