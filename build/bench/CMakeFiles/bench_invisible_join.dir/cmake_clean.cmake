file(REMOVE_RECURSE
  "CMakeFiles/bench_invisible_join.dir/bench_invisible_join.cc.o"
  "CMakeFiles/bench_invisible_join.dir/bench_invisible_join.cc.o.d"
  "bench_invisible_join"
  "bench_invisible_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invisible_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
