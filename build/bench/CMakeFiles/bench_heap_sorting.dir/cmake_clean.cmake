file(REMOVE_RECURSE
  "CMakeFiles/bench_heap_sorting.dir/bench_heap_sorting.cc.o"
  "CMakeFiles/bench_heap_sorting.dir/bench_heap_sorting.cc.o.d"
  "bench_heap_sorting"
  "bench_heap_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heap_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
