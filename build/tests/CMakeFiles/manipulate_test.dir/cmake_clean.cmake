file(REMOVE_RECURSE
  "CMakeFiles/manipulate_test.dir/manipulate_test.cc.o"
  "CMakeFiles/manipulate_test.dir/manipulate_test.cc.o.d"
  "manipulate_test"
  "manipulate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manipulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
