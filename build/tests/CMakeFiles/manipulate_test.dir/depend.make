# Empty dependencies file for manipulate_test.
# This may be replaced when dependencies are built.
