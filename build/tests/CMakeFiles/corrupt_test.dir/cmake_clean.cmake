file(REMOVE_RECURSE
  "CMakeFiles/corrupt_test.dir/corrupt_test.cc.o"
  "CMakeFiles/corrupt_test.dir/corrupt_test.cc.o.d"
  "corrupt_test"
  "corrupt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
