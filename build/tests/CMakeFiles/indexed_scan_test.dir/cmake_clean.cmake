file(REMOVE_RECURSE
  "CMakeFiles/indexed_scan_test.dir/indexed_scan_test.cc.o"
  "CMakeFiles/indexed_scan_test.dir/indexed_scan_test.cc.o.d"
  "indexed_scan_test"
  "indexed_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
