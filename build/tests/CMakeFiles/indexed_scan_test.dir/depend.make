# Empty dependencies file for indexed_scan_test.
# This may be replaced when dependencies are built.
