# Empty dependencies file for stream_width_test.
# This may be replaced when dependencies are built.
