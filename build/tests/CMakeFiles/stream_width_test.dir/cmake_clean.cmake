file(REMOVE_RECURSE
  "CMakeFiles/stream_width_test.dir/stream_width_test.cc.o"
  "CMakeFiles/stream_width_test.dir/stream_width_test.cc.o.d"
  "stream_width_test"
  "stream_width_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_width_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
