# Empty dependencies file for string_heap_test.
# This may be replaced when dependencies are built.
