file(REMOVE_RECURSE
  "CMakeFiles/string_heap_test.dir/string_heap_test.cc.o"
  "CMakeFiles/string_heap_test.dir/string_heap_test.cc.o.d"
  "string_heap_test"
  "string_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
