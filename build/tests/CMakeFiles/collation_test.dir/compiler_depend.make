# Empty compiler generated dependencies file for collation_test.
# This may be replaced when dependencies are built.
