file(REMOVE_RECURSE
  "CMakeFiles/collation_test.dir/collation_test.cc.o"
  "CMakeFiles/collation_test.dir/collation_test.cc.o.d"
  "collation_test"
  "collation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
