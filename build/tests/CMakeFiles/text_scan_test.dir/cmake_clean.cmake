file(REMOVE_RECURSE
  "CMakeFiles/text_scan_test.dir/text_scan_test.cc.o"
  "CMakeFiles/text_scan_test.dir/text_scan_test.cc.o.d"
  "text_scan_test"
  "text_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
