# Empty dependencies file for text_scan_test.
# This may be replaced when dependencies are built.
