file(REMOVE_RECURSE
  "CMakeFiles/dynamic_encoder_test.dir/dynamic_encoder_test.cc.o"
  "CMakeFiles/dynamic_encoder_test.dir/dynamic_encoder_test.cc.o.d"
  "dynamic_encoder_test"
  "dynamic_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
