# Empty dependencies file for dynamic_encoder_test.
# This may be replaced when dependencies are built.
