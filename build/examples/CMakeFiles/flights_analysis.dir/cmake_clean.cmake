file(REMOVE_RECURSE
  "CMakeFiles/flights_analysis.dir/flights_analysis.cpp.o"
  "CMakeFiles/flights_analysis.dir/flights_analysis.cpp.o.d"
  "flights_analysis"
  "flights_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
