# Empty dependencies file for url_analysis.
# This may be replaced when dependencies are built.
