# Empty compiler generated dependencies file for url_analysis.
# This may be replaced when dependencies are built.
