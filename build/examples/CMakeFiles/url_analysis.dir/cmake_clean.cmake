file(REMOVE_RECURSE
  "CMakeFiles/url_analysis.dir/url_analysis.cpp.o"
  "CMakeFiles/url_analysis.dir/url_analysis.cpp.o.d"
  "url_analysis"
  "url_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
