# Empty compiler generated dependencies file for tde_shell.
# This may be replaced when dependencies are built.
