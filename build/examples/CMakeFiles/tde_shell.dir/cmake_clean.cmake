file(REMOVE_RECURSE
  "CMakeFiles/tde_shell.dir/tde_shell.cpp.o"
  "CMakeFiles/tde_shell.dir/tde_shell.cpp.o.d"
  "tde_shell"
  "tde_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tde_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
