# Empty compiler generated dependencies file for date_rollup.
# This may be replaced when dependencies are built.
