file(REMOVE_RECURSE
  "CMakeFiles/date_rollup.dir/date_rollup.cpp.o"
  "CMakeFiles/date_rollup.dir/date_rollup.cpp.o.d"
  "date_rollup"
  "date_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
