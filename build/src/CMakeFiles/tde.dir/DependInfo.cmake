
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/collation.cc" "src/CMakeFiles/tde.dir/common/collation.cc.o" "gcc" "src/CMakeFiles/tde.dir/common/collation.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/tde.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/tde.dir/common/hash.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tde.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tde.dir/common/status.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/tde.dir/common/types.cc.o" "gcc" "src/CMakeFiles/tde.dir/common/types.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/tde.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/tde.dir/core/engine.cc.o.d"
  "/root/repo/src/encoding/affine_stream.cc" "src/CMakeFiles/tde.dir/encoding/affine_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/affine_stream.cc.o.d"
  "/root/repo/src/encoding/bitpack.cc" "src/CMakeFiles/tde.dir/encoding/bitpack.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/bitpack.cc.o.d"
  "/root/repo/src/encoding/delta_stream.cc" "src/CMakeFiles/tde.dir/encoding/delta_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/delta_stream.cc.o.d"
  "/root/repo/src/encoding/dict_stream.cc" "src/CMakeFiles/tde.dir/encoding/dict_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/dict_stream.cc.o.d"
  "/root/repo/src/encoding/dynamic_encoder.cc" "src/CMakeFiles/tde.dir/encoding/dynamic_encoder.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/dynamic_encoder.cc.o.d"
  "/root/repo/src/encoding/for_stream.cc" "src/CMakeFiles/tde.dir/encoding/for_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/for_stream.cc.o.d"
  "/root/repo/src/encoding/header.cc" "src/CMakeFiles/tde.dir/encoding/header.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/header.cc.o.d"
  "/root/repo/src/encoding/manipulate.cc" "src/CMakeFiles/tde.dir/encoding/manipulate.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/manipulate.cc.o.d"
  "/root/repo/src/encoding/metadata.cc" "src/CMakeFiles/tde.dir/encoding/metadata.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/metadata.cc.o.d"
  "/root/repo/src/encoding/rle_stream.cc" "src/CMakeFiles/tde.dir/encoding/rle_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/rle_stream.cc.o.d"
  "/root/repo/src/encoding/stats.cc" "src/CMakeFiles/tde.dir/encoding/stats.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/stats.cc.o.d"
  "/root/repo/src/encoding/stream.cc" "src/CMakeFiles/tde.dir/encoding/stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/stream.cc.o.d"
  "/root/repo/src/encoding/uncompressed_stream.cc" "src/CMakeFiles/tde.dir/encoding/uncompressed_stream.cc.o" "gcc" "src/CMakeFiles/tde.dir/encoding/uncompressed_stream.cc.o.d"
  "/root/repo/src/exec/block.cc" "src/CMakeFiles/tde.dir/exec/block.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/block.cc.o.d"
  "/root/repo/src/exec/dictionary_table.cc" "src/CMakeFiles/tde.dir/exec/dictionary_table.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/dictionary_table.cc.o.d"
  "/root/repo/src/exec/exchange.cc" "src/CMakeFiles/tde.dir/exec/exchange.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/exchange.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/tde.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/tde.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/flow_table.cc" "src/CMakeFiles/tde.dir/exec/flow_table.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/flow_table.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/tde.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/tde.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/indexed_scan.cc" "src/CMakeFiles/tde.dir/exec/indexed_scan.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/indexed_scan.cc.o.d"
  "/root/repo/src/exec/ordered_aggregate.cc" "src/CMakeFiles/tde.dir/exec/ordered_aggregate.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/ordered_aggregate.cc.o.d"
  "/root/repo/src/exec/parallel_rollup.cc" "src/CMakeFiles/tde.dir/exec/parallel_rollup.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/parallel_rollup.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/tde.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/tde.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/table_scan.cc" "src/CMakeFiles/tde.dir/exec/table_scan.cc.o" "gcc" "src/CMakeFiles/tde.dir/exec/table_scan.cc.o.d"
  "/root/repo/src/plan/executor.cc" "src/CMakeFiles/tde.dir/plan/executor.cc.o" "gcc" "src/CMakeFiles/tde.dir/plan/executor.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/tde.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/tde.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/strategic.cc" "src/CMakeFiles/tde.dir/plan/strategic.cc.o" "gcc" "src/CMakeFiles/tde.dir/plan/strategic.cc.o.d"
  "/root/repo/src/plan/tactical.cc" "src/CMakeFiles/tde.dir/plan/tactical.cc.o" "gcc" "src/CMakeFiles/tde.dir/plan/tactical.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/tde.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/tde.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/tde.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/tde.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/tde.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/database_file.cc" "src/CMakeFiles/tde.dir/storage/database_file.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/database_file.cc.o.d"
  "/root/repo/src/storage/heap_accelerator.cc" "src/CMakeFiles/tde.dir/storage/heap_accelerator.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/heap_accelerator.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/tde.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/string_heap.cc" "src/CMakeFiles/tde.dir/storage/string_heap.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/string_heap.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/tde.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/tde.dir/storage/table.cc.o.d"
  "/root/repo/src/textscan/inference.cc" "src/CMakeFiles/tde.dir/textscan/inference.cc.o" "gcc" "src/CMakeFiles/tde.dir/textscan/inference.cc.o.d"
  "/root/repo/src/textscan/parsers.cc" "src/CMakeFiles/tde.dir/textscan/parsers.cc.o" "gcc" "src/CMakeFiles/tde.dir/textscan/parsers.cc.o.d"
  "/root/repo/src/textscan/text_scan.cc" "src/CMakeFiles/tde.dir/textscan/text_scan.cc.o" "gcc" "src/CMakeFiles/tde.dir/textscan/text_scan.cc.o.d"
  "/root/repo/src/workload/flights.cc" "src/CMakeFiles/tde.dir/workload/flights.cc.o" "gcc" "src/CMakeFiles/tde.dir/workload/flights.cc.o.d"
  "/root/repo/src/workload/rle_data.cc" "src/CMakeFiles/tde.dir/workload/rle_data.cc.o" "gcc" "src/CMakeFiles/tde.dir/workload/rle_data.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/tde.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/tde.dir/workload/tpch.cc.o.d"
  "/root/repo/src/workload/tpch_queries.cc" "src/CMakeFiles/tde.dir/workload/tpch_queries.cc.o" "gcc" "src/CMakeFiles/tde.dir/workload/tpch_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
