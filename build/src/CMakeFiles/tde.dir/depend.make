# Empty dependencies file for tde.
# This may be replaced when dependencies are built.
