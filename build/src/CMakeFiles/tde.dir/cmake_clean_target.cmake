file(REMOVE_RECURSE
  "libtde.a"
)
