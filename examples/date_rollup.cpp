// The Sect. 8 / 4.2 scenario: a sorted, run-length encoded date column is
// exposed as an IndexTable; the month roll-up is computed on the *index*
// (one row per distinct date) and re-aggregated with MIN(start)/SUM(count),
// converting the index on raw dates into an index on months — without
// touching the raw rows. Ordered aggregation then runs over the ranges.

#include <cstdio>

#include "src/core/engine.h"
#include "src/exec/indexed_scan.h"
#include "src/exec/parallel_rollup.h"

using namespace tde;        // NOLINT
using namespace tde::expr;  // NOLINT

int main() {
  // Daily measurements across two years, several rows per day.
  std::string csv = "day,amount\n";
  const int64_t start = DaysFromCivil(2013, 1, 1);
  uint64_t x = 7;
  for (int64_t d = 0; d < 730; ++d) {
    const int rows = 20 + static_cast<int>(d % 30);
    for (int i = 0; i < rows; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      csv += FormatLane(TypeId::kDate, start + d) + "," +
             std::to_string(x % 500) + "\n";
    }
  }
  Engine engine;
  auto table = engine.ImportTextBuffer(csv, "measurements").MoveValue();
  const Column& day = *table->ColumnByName("day").value();
  std::printf("day column: %s, sorted: %s\n",
              EncodingName(day.data()->type()),
              day.metadata().sorted ? "yes" : "no");

  // Build the IndexTable: one (value, count, start) row per distinct day.
  auto index = BuildIndexTable(day).MoveValue();
  std::printf("index: %llu entries over %llu rows\n",
              static_cast<unsigned long long>(index.size()),
              static_cast<unsigned long long>(table->rows()));

  // Roll the index up to months: MIN(start), SUM(count) per TRUNC_MONTH —
  // the index on raw dates becomes an index on months without touching
  // the raw rows.
  auto month_index = RollUpIndex(index, TruncateToMonth).MoveValue();
  std::printf("rolled up to %llu month entries\n",
              static_cast<unsigned long long>(month_index.size()));

  // Partition the month index across cores and run ordered aggregation on
  // each partition (the Sect. 8 parallel ordered aggregation).
  ParallelRollupOptions rollup;
  rollup.value_name = "month";
  rollup.payload = {"amount"};
  rollup.aggs = {{AggKind::kSum, "amount", "total"},
                 {AggKind::kCountStar, "", "rows"}};
  rollup.workers = 4;
  auto rolled = ParallelIndexedAggregate(table, month_index, rollup);
  if (!rolled.ok()) {
    std::fprintf(stderr, "%s\n", rolled.status().ToString().c_str());
    return 1;
  }
  QueryResult result(rolled.value().schema,
                     std::move(rolled.value().blocks));
  std::printf("\nmonthly totals (first 12 of %llu):\n",
              static_cast<unsigned long long>(result.num_rows()));
  for (uint64_t r = 0; r < std::min<uint64_t>(12, result.num_rows()); ++r) {
    std::printf("  %s  total=%s rows=%s\n",
                FormatLane(TypeId::kDate, result.Value(r, 0)).c_str(),
                result.ValueString(r, 1).c_str(),
                result.ValueString(r, 2).c_str());
  }
  return 0;
}
