// The Sect. 4.1.2 scenario: a string column of URL requests and a
// calculation extracting the file extension. The strategic optimizer
// expands the compressed column through a DictionaryTable, so the string
// function runs once per *distinct* URL instead of once per row; FlowTable
// then sorts and narrows the computed column so the aggregation can use a
// fast hash.

#include <chrono>
#include <cstdio>

#include "src/core/engine.h"
#include "src/exec/dictionary_table.h"
#include "src/exec/filter.h"

using namespace tde;        // NOLINT
using namespace tde::expr;  // NOLINT

int main() {
  // A web log: many rows, few distinct URLs.
  const char* urls[] = {
      "/index.html",       "/logo.png",       "/app.js",
      "/styles/site.css",  "/api/data.json",  "/docs/guide.pdf",
      "/img/banner.jpg",   "/favicon.ico",    "/search.html",
      "/video/intro.mp4",
  };
  std::string csv = "url,bytes\n";
  for (int i = 0; i < 200000; ++i) {
    csv += urls[static_cast<size_t>(i * 2654435761u % 10)];
    csv += ",";
    csv += std::to_string(i % 5000);
    csv += "\n";
  }

  Engine engine;
  auto table = engine.ImportTextBuffer(csv, "weblog").MoveValue();
  const Column& url_col = *table->ColumnByName("url").value();
  std::printf("url column: %s, %llu distinct of %llu rows, sorted heap: %s\n",
              EncodingName(url_col.data()->type()),
              static_cast<unsigned long long>(url_col.metadata().cardinality),
              static_cast<unsigned long long>(table->rows()),
              url_col.heap()->sorted() ? "yes" : "no");

  // Count requests per file extension. The naive plan computes
  // EXTENSION(url) for all 200k rows.
  const auto started = std::chrono::steady_clock::now();
  auto naive = engine.Execute(
      Plan::Scan(table)
          .Project({{StrF(StrFunc::kExtension, Col("url")), "ext"},
                    {Col("bytes"), "bytes"}})
          .Aggregate({"ext"}, {{AggKind::kCountStar, "", "requests"},
                               {AggKind::kSum, "bytes", "bytes"}}),
      StrategicOptions{.enable_invisible_join = false});
  const double naive_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (!naive.ok()) {
    std::fprintf(stderr, "%s\n", naive.status().ToString().c_str());
    return 1;
  }

  // The invisible-join plan computes EXTENSION once per distinct URL on
  // the dictionary side and joins the result back over tokens.
  const auto started2 = std::chrono::steady_clock::now();
  auto dict = BuildDictionaryTable(table->ColumnByName("url").value())
                  .MoveValue();
  auto inner_flow = std::make_unique<Project>(
      std::make_unique<TableScan>(dict),
      std::vector<ProjectedColumn>{
          {Col("url$token"), "url$token"},
          {StrF(StrFunc::kExtension, Col("url")), "ext"}});
  FlowTableOptions ft;
  ft.allowed = kAllowRandomAccess;
  auto inner = FlowTable::Build(std::move(inner_flow), ft).MoveValue();
  std::printf("dictionary side: %llu rows, computed 'ext' width %d\n",
              static_cast<unsigned long long>(inner->rows()),
              inner->ColumnByName("ext").value()->TokenWidth());

  TableScanOptions scan;
  scan.columns = {"bytes"};
  scan.token_columns = {"url"};
  HashJoinOptions jo;
  jo.outer_key = "url$token";
  jo.inner_key = "url$token";
  jo.inner_payload = {"ext"};
  auto join = std::make_unique<HashJoin>(
      std::make_unique<TableScan>(table, scan), inner, jo);
  AggregateOptions agg;
  agg.group_by = {"ext"};
  agg.aggs = {{AggKind::kCountStar, "", "requests"},
              {AggKind::kSum, "bytes", "bytes"}};
  HashAggregate final_agg(std::move(join), agg);
  std::vector<Block> blocks;
  if (!DrainOperator(&final_agg, &blocks).ok()) return 1;
  const double invisible_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started2)
          .count();

  QueryResult invisible(final_agg.output_schema(), std::move(blocks));
  std::printf("\nrequests per extension (invisible-join plan):\n%s",
              invisible.ToString().c_str());
  std::printf("naive plan: %.3fs; invisible-join plan: %.3fs (%.1fx)\n",
              naive_s, invisible_s, naive_s / invisible_s);
  return 0;
}
