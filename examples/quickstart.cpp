// Quickstart: import a CSV, inspect the inferred schema and extracted
// metadata, and run a filter/aggregate query.
//
//   build/examples/quickstart

#include <cstdio>

#include "src/core/engine.h"

using namespace tde;        // NOLINT: example brevity
using namespace tde::expr;  // NOLINT

int main() {
  // A small flat file. TextScan infers the separator, the column types and
  // the header row on its own (Sect. 5.1 of the paper).
  const std::string csv =
      "city,state,population,founded\n"
      "Seattle,WA,749256,1851-11-13\n"
      "Portland,OR,652503,1845-02-08\n"
      "Spokane,WA,228989,1873-05-01\n"
      "Tacoma,WA,219346,1872-07-14\n"
      "Eugene,OR,176654,1846-06-15\n";

  Engine engine;
  auto table_r = engine.ImportTextBuffer(csv, "cities");
  if (!table_r.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 table_r.status().ToString().c_str());
    return 1;
  }
  auto table = table_r.MoveValue();

  std::printf("schema: %s\n", table->GetSchema().ToString().c_str());
  std::printf("\nper-column encodings and extracted metadata:\n");
  for (size_t i = 0; i < table->num_columns(); ++i) {
    const Column& c = table->column(i);
    std::printf("  %-12s %-18s width=%d  %s\n", c.name().c_str(),
                EncodingName(c.data()->type()), c.TokenWidth(),
                c.metadata().ToString().c_str());
  }

  // Query: population per state for cities founded before 1870.
  auto result = engine.Execute(
      Plan::Scan(table)
          .Filter(Lt(Col("founded"), Date(1870, 1, 1)))
          .Aggregate({"state"}, {{AggKind::kSum, "population", "pop"},
                                 {AggKind::kCountStar, "", "cities"}}));
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\npopulation per state (cities founded before 1870):\n%s",
              result.value().ToString().c_str());

  // Persist the whole thing as a single file (Sect. 2.3.3) and reopen it.
  const std::string path = "/tmp/quickstart.tde";
  if (!engine.SaveDatabase(path).ok()) return 1;
  auto reopened = Engine::OpenDatabase(path);
  if (!reopened.ok()) return 1;
  std::printf("\nsaved and reopened single-file database: %s (%llu tables)\n",
              path.c_str(),
              static_cast<unsigned long long>(
                  reopened.value().database()->num_tables()));
  return 0;
}
