// End-to-end analytic session on the synthetic Flights data set (the
// paper's second large table): generate, import through TextScan/FlowTable,
// inspect what the encodings bought, persist a single-file database and
// answer typical dashboard queries through the optimizer.

#include <cstdio>

#include "src/core/engine.h"
#include "src/workload/flights.h"

using namespace tde;        // NOLINT
using namespace tde::expr;  // NOLINT

int main() {
  const uint64_t rows = 300000;
  std::printf("generating %llu flights...\n",
              static_cast<unsigned long long>(rows));
  const std::string csv = GenerateFlights(rows);

  Engine engine;
  auto table = engine.ImportTextBuffer(csv, "flights").MoveValue();
  std::printf("imported %llu rows; flat file %.1f MB -> database %.1f MB\n",
              static_cast<unsigned long long>(table->rows()),
              static_cast<double>(csv.size()) / 1e6,
              static_cast<double>(table->PhysicalSize()) / 1e6);

  std::printf("\ncolumn encodings:\n");
  for (size_t i = 0; i < table->num_columns(); ++i) {
    const Column& c = table->column(i);
    std::printf("  %-14s %-18s width=%d %s\n", c.name().c_str(),
                EncodingName(c.data()->type()), c.TokenWidth(),
                c.metadata().ToString().c_str());
  }

  // Dashboard query 1: average arrival delay per carrier, worst first.
  auto by_carrier = engine.Execute(
      Plan::Scan(table)
          .Aggregate({"carrier"}, {{AggKind::kAvg, "arr_delay", "avg_delay"},
                                   {AggKind::kCountStar, "", "flights"}})
          .OrderBy({{"avg_delay", false}}));
  if (!by_carrier.ok()) {
    std::fprintf(stderr, "%s\n", by_carrier.status().ToString().c_str());
    return 1;
  }
  std::printf("\naverage arrival delay per carrier (worst 5):\n%s",
              by_carrier.value().ToString(5).c_str());

  // Dashboard query 2: monthly flight counts for one year — a date filter
  // the optimizer can push through the compression.
  auto monthly = engine.Execute(
      Plan::Scan(table)
          .Filter(And(Ge(Col("flight_date"), Date(2002, 1, 1)),
                      Lt(Col("flight_date"), Date(2003, 1, 1))))
          .Project({{DateF(DateFunc::kTruncMonth, Col("flight_date")), "m"},
                    {Col("dep_delay"), "dep_delay"}})
          .Aggregate({"m"}, {{AggKind::kCountStar, "", "flights"},
                             {AggKind::kMedian, "dep_delay", "median_dep"}})
          .OrderBy({{"m", true}}));
  if (!monthly.ok()) {
    std::fprintf(stderr, "%s\n", monthly.status().ToString().c_str());
    return 1;
  }
  std::printf("\nflights and median departure delay per month of 2002:\n%s",
              monthly.value().ToString(12).c_str());

  // Dashboard query 3: COUNTD — one of the functions extracts exist to
  // supplement (Sect. 2.2).
  auto countd = engine.Execute(Plan::Scan(table).Aggregate(
      {"carrier"}, {{AggKind::kCountDistinct, "dest", "destinations"}}));
  if (!countd.ok()) return 1;
  std::printf("\ndistinct destinations per carrier (first 5):\n%s",
              countd.value().ToString(5).c_str());

  const std::string path = "/tmp/flights.tde";
  if (!engine.SaveDatabase(path).ok()) return 1;
  std::printf("saved single-file database to %s\n", path.c_str());
  return 0;
}
