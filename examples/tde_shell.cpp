// An interactive shell over the engine: import flat files, run SQL, save
// and reopen single-file databases.
//
//   build/examples/tde_shell [file.tde | file.csv ...]
//
// Commands:
//   .import <path> [name]   import a flat file (TextScan + FlowTable)
//   .attach <path> [name]   import and watch for changes (.refresh)
//   .refresh                re-import attached files that changed
//   .optimize <table>       convert small-domain scalar columns to
//                           dictionary compression (global optimization)
//   .tables                 list tables with row counts and sizes
//   .schema <table>         per-column encodings and extracted metadata
//   .save <path>            write the single-file database
//   .open <path>            load a single-file database
//   .quit
// Anything else is SQL (prefix with EXPLAIN to see the optimized plan).

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/engine.h"

using namespace tde;  // NOLINT: example brevity

namespace {

void ListTables(const Engine& engine) {
  for (const auto& t : engine.database().tables()) {
    std::printf("  %-20s %10llu rows  %8.2f MB encoded\n", t->name().c_str(),
                static_cast<unsigned long long>(t->rows()),
                static_cast<double>(t->PhysicalSize()) / 1e6);
  }
}

void ShowSchema(const Engine& engine, const std::string& name) {
  auto t = engine.database().GetTable(name);
  if (!t.ok()) {
    std::printf("%s\n", t.status().ToString().c_str());
    return;
  }
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    const Column& c = t.value()->column(i);
    std::printf("  %-20s %-9s %-18s width=%d  %s\n", c.name().c_str(),
                TypeName(c.type()), EncodingName(c.data()->type()),
                c.TokenWidth(), c.metadata().ToString().c_str());
  }
}

std::string DefaultName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  Engine engine;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    if (path.size() > 4 && path.substr(path.size() - 4) == ".tde") {
      auto r = Engine::OpenDatabase(path);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      engine = r.MoveValue();
      std::printf("opened %s\n", path.c_str());
    } else {
      auto r = engine.ImportTextFile(path, DefaultName(path));
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf("imported %s as '%s' (%llu rows)\n", path.c_str(),
                  DefaultName(path).c_str(),
                  static_cast<unsigned long long>(r.value()->rows()));
    }
  }

  std::string line;
  std::printf("tde shell — SQL or .help\n");
  while (std::printf("tde> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == '.') {
      std::istringstream ss(line);
      std::string cmd, arg1, arg2;
      ss >> cmd >> arg1 >> arg2;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".tables") {
        ListTables(engine);
      } else if (cmd == ".schema") {
        ShowSchema(engine, arg1);
      } else if (cmd == ".import" || cmd == ".attach") {
        const std::string name = arg2.empty() ? DefaultName(arg1) : arg2;
        auto r = cmd == ".import" ? engine.ImportTextFile(arg1, name)
                                  : engine.AttachTextFile(arg1, name);
        std::printf("%s\n", r.ok()
                                ? ("imported '" + name + "', " +
                                   std::to_string(r.value()->rows()) + " rows")
                                      .c_str()
                                : r.status().ToString().c_str());
      } else if (cmd == ".refresh") {
        auto r = engine.RefreshChanged();
        std::printf("%s\n",
                    r.ok() ? (std::to_string(r.value()) + " table(s) rebuilt")
                                 .c_str()
                           : r.status().ToString().c_str());
      } else if (cmd == ".optimize") {
        auto r = engine.OptimizeTable(arg1);
        std::printf("%s\n",
                    r.ok() ? (std::to_string(r.value()) +
                              " column(s) dictionary compressed")
                                 .c_str()
                           : r.status().ToString().c_str());
      } else if (cmd == ".save") {
        const Status st = engine.SaveDatabase(arg1);
        std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      } else if (cmd == ".open") {
        auto r = Engine::OpenDatabase(arg1);
        if (r.ok()) {
          engine = r.MoveValue();
          std::printf("opened\n");
        } else {
          std::printf("%s\n", r.status().ToString().c_str());
        }
      } else if (cmd == ".help") {
        std::printf(
            ".import <path> [name] | .attach <path> [name] | .refresh |\n"
            ".optimize <table> | "
            ".tables | .schema <table> | .save <path> | .open <path> | "
            ".quit\nanything else is SQL (try EXPLAIN SELECT ...)\n");
      } else {
        std::printf("unknown command %s (try .help)\n", cmd.c_str());
      }
      continue;
    }
    auto r = engine.ExecuteSql(line);
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("%s(%llu rows)\n", r.value().ToString(40).c_str(),
                static_cast<unsigned long long>(r.value().num_rows()));
  }
  return 0;
}
