#!/usr/bin/env bash
# Perf-regression gate: run bench_rollup and bench_heap_sorting in JSON
# mode and compare every named measurement against the committed baseline
# (ci/BENCH_baseline.json).
# A measurement fails the gate when it is BOTH more than TDE_BENCH_TOLERANCE
# slower relatively AND more than TDE_BENCH_MIN_MS slower absolutely — the
# absolute floor keeps sub-millisecond timer noise from failing CI.
#
# Usage: ci/check_bench.sh <build-dir> [--rebaseline]
#
# Knobs (all optional):
#   TDE_BENCH_TOLERANCE  relative slowdown allowed (default: 0.25 = 25%)
#   TDE_BENCH_MIN_MS     absolute slowdown floor in ms (default: 20)
#   TDE_ROLLUP_ROWS      bench table size (default: 1000000 for the gate;
#                        must match the baseline's "rows" or the gate
#                        refuses to compare)
#   TDE_SORT_ROWS        ORDER BY / Top-N table size (default: 1000000;
#                        recorded in the baseline as "sort_rows")
#
# --rebaseline replaces the committed baseline with this run's numbers
# (use after an intentional perf change, on the reference machine).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:?usage: ci/check_bench.sh <build-dir> [--rebaseline]}"
BUILD="$(cd "$BUILD" && pwd)"
MODE="${2:-check}"
BASELINE="$ROOT/ci/BENCH_baseline.json"
ROWS="${TDE_ROLLUP_ROWS:-1000000}"
SORT_ROWS="${TDE_SORT_ROWS:-1000000}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
(cd "$WORK" && TDE_ROLLUP_ROWS="$ROWS" "$BUILD/bench/bench_rollup" --json \
    > bench.out) || { cat "$WORK/bench.out"; exit 1; }
[[ -f "$WORK/BENCH_rollup.json" ]] || {
  echo "bench_rollup wrote no BENCH_rollup.json"; exit 1; }
# The sorting bench's Fig. 6 half replays TPC-H imports; shrink them so
# the gate only pays for the ORDER BY / Top-N measurements.
(cd "$WORK" && TDE_SORT_ROWS="$SORT_ROWS" TDE_SF=0.001 \
    TDE_FLIGHTS_ROWS=1000 "$BUILD/bench/bench_heap_sorting" --json \
    > sortbench.out) || { cat "$WORK/sortbench.out"; exit 1; }
[[ -f "$WORK/BENCH_sorting.json" ]] || {
  echo "bench_heap_sorting wrote no BENCH_sorting.json"; exit 1; }

# One merged doc: measurement names are globally unique across benches.
FRESH="$WORK/BENCH_fresh.json"
python3 - "$WORK/BENCH_rollup.json" "$WORK/BENCH_sorting.json" \
    "$FRESH" <<'EOF'
import json, sys
rollup = json.load(open(sys.argv[1]))
sorting = json.load(open(sys.argv[2]))
doc = {"bench": "gate", "results": rollup["results"] + sorting["results"]}
json.dump(doc, open(sys.argv[3], "w"))
EOF

if [[ "$MODE" == "--rebaseline" ]]; then
  python3 - "$FRESH" "$BASELINE" "$ROWS" "$SORT_ROWS" <<'EOF'
import json, sys
fresh, baseline = sys.argv[1], sys.argv[2]
doc = json.load(open(fresh))
doc["rows"] = int(sys.argv[3])
doc["sort_rows"] = int(sys.argv[4])
json.dump(doc, open(baseline, "w"), indent=1)
open(baseline, "a").write("\n")
print(f"rebaselined {baseline} at rows={doc['rows']} "
      f"sort_rows={doc['sort_rows']} ({len(doc['results'])} measurements)")
EOF
  exit 0
fi

[[ -f "$BASELINE" ]] || {
  echo "no baseline at $BASELINE; run: ci/check_bench.sh $BUILD --rebaseline"
  exit 1
}

python3 - "$FRESH" "$BASELINE" "$ROWS" "$SORT_ROWS" <<'EOF'
import json, os, sys
fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
rows = int(sys.argv[3])
sort_rows = int(sys.argv[4])
tol = float(os.environ.get("TDE_BENCH_TOLERANCE", "0.25"))
floor_ms = float(os.environ.get("TDE_BENCH_MIN_MS", "20"))

if base.get("rows") != rows:
    sys.exit(f"baseline was recorded at rows={base.get('rows')}, this run "
             f"used rows={rows}; set TDE_ROLLUP_ROWS to match or rebaseline")
if base.get("sort_rows", sort_rows) != sort_rows:
    sys.exit(f"baseline was recorded at sort_rows={base.get('sort_rows')}, "
             f"this run used sort_rows={sort_rows}; set TDE_SORT_ROWS to "
             "match or rebaseline")

old = {r["name"]: r for r in base["results"]}
new = {r["name"]: r for r in fresh["results"]}
missing = sorted(set(old) - set(new))
if missing:
    sys.exit(f"measurements missing from this run: {missing}")

failed = []
print(f"{'measurement':<28}{'base_ms':>10}{'new_ms':>10}{'delta':>8}")
for name in sorted(old):
    b, n = old[name]["ms"], new[name]["ms"]
    if old[name].get("groups") != new[name].get("groups"):
        failed.append(f"{name}: groups changed "
                      f"{old[name].get('groups')} -> {new[name].get('groups')}"
                      " (bench output drifted; rebaseline deliberately)")
    rel = (n - b) / b if b > 0 else 0.0
    mark = ""
    if n - b > floor_ms and rel > tol:
        failed.append(f"{name}: {b:.1f}ms -> {n:.1f}ms (+{rel:.0%}, "
                      f"tolerance {tol:.0%})")
        mark = "  REGRESSION"
    print(f"{name:<28}{b:>10.1f}{n:>10.1f}{rel:>+8.0%}{mark}")

added = sorted(set(new) - set(old))
if added:
    print(f"note: new measurements not in baseline (rebaseline to gate "
          f"them): {added}")
if failed:
    print("\nperf-regression gate FAILED:")
    for f in failed:
        print(f"  {f}")
    sys.exit(1)
print("\nperf-regression gate passed "
      f"(tolerance {tol:.0%}, floor {floor_ms:.0f}ms)")
EOF
