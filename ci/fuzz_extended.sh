#!/usr/bin/env bash
# Extended differential sweep (nightly / on demand): the tier-1 suite runs
# a bounded differential_test; this script fans the same harness out over
# dataset seeds × row counts × segment sizes, with a seed budget split
# across the matrix. Any divergence fails with the harness's self-contained
# repro line (see README "Differential testing").
#
# Usage: ci/fuzz_extended.sh [build-dir]
#
# Knobs (all optional):
#   TDE_FUZZ_SEEDS   total query-seed budget across the matrix (default 9600)
#   TDE_FUZZ_DATA    dataset seeds to sweep (default "1 3 7 11")
#   TDE_FUZZ_ROWS    fact-table row counts (default "40 150 900 2500")
#   TDE_FUZZ_SEGS    segment sizes (default "64 256 1024")
#   TDE_FUZZ_THREADS concurrency stress thread counts (default "2 4 8";
#                    set to "" to skip the concurrent-query stage)
#   TDE_FUZZ_STRESS_ITERS  iterations per concurrency cell (default 50)
#   TDE_FUZZ_SORT_ROWS  sort-axis row counts past the parallel-sort
#                    threshold of 8192 (default "9000 20000"; "" skips)
#   TDE_FUZZ_SORT_SEGS  sort-axis segment sizes (default "512 2048")
#   TDE_FUZZ_SORT_SEEDS seeds per sort-axis cell (default 60)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
BIN="$BUILD/tests/differential_test"
STRESS_BIN="$BUILD/tests/concurrency_test"

if [[ ! -x "$BIN" || ! -x "$STRESS_BIN" ]]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$(nproc)" --target differential_test \
      --target concurrency_test
fi

TOTAL="${TDE_FUZZ_SEEDS:-9600}"
read -r -a DATA <<< "${TDE_FUZZ_DATA:-1 3 7 11}"
read -r -a ROWS <<< "${TDE_FUZZ_ROWS:-40 150 900 2500}"
read -r -a SEGS <<< "${TDE_FUZZ_SEGS:-64 256 1024}"

CELLS=$(( ${#DATA[@]} * ${#ROWS[@]} * ${#SEGS[@]} ))
PER_CELL=$(( TOTAL / CELLS ))
if (( PER_CELL < 1 )); then PER_CELL=1; fi

echo "differential fuzz: $CELLS cells x $PER_CELL seeds"
for ds in "${DATA[@]}"; do
  for rows in "${ROWS[@]}"; do
    for seg in "${SEGS[@]}"; do
      echo "--- data_seed=$ds rows=$rows seg_rows=$seg seeds=$PER_CELL"
      TDE_DIFF_DATA_SEED="$ds" TDE_DIFF_ROWS="$rows" \
      TDE_DIFF_SEG_ROWS="$seg" TDE_DIFF_SEEDS="$PER_CELL" \
          "$BIN" --gtest_filter='DifferentialTest.*'
    done
  done
done
echo "differential fuzz: clean"

# Sort axis: fact tables past the parallel-sort threshold (8192 rows), so
# chunked sort + merge, Top-N zone skipping across many segments, and the
# run-index sort all engage under the same kill-switch matrix. ORDER BY
# shapes make up over half of the generated non-aggregate queries.
read -r -a SORT_ROWS_AXIS <<< "${TDE_FUZZ_SORT_ROWS:-9000 20000}"
read -r -a SORT_SEGS <<< "${TDE_FUZZ_SORT_SEGS:-512 2048}"
SORT_SEEDS="${TDE_FUZZ_SORT_SEEDS:-60}"
for rows in "${SORT_ROWS_AXIS[@]}"; do
  for seg in "${SORT_SEGS[@]}"; do
    echo "--- sort axis: rows=$rows seg_rows=$seg seeds=$SORT_SEEDS"
    TDE_DIFF_ROWS="$rows" TDE_DIFF_SEG_ROWS="$seg" \
    TDE_DIFF_SEEDS="$SORT_SEEDS" \
        "$BIN" --gtest_filter='DifferentialTest.*'
  done
done
echo "sort axis: clean"

# Concurrent-query stress axis: the bounded tier-1 concurrency test soaked
# with long iteration counts across several thread counts, all contending
# one pinned four-worker scheduler pool.
read -r -a THREADS <<< "${TDE_FUZZ_THREADS:-2 4 8}"
ITERS="${TDE_FUZZ_STRESS_ITERS:-50}"
for t in "${THREADS[@]}"; do
  echo "--- concurrency stress: threads=$t iters=$ITERS workers=4"
  TDE_WORKERS=4 TDE_STRESS_THREADS="$t" TDE_STRESS_ITERS="$ITERS" \
      "$STRESS_BIN"
done
echo "concurrency stress: clean"
