#!/usr/bin/env bash
# CI entry point: configure, build, run the tier-1 test suite, then run the
# same suite under ASan+UBSan and under TSan, and finally run one bench in
# JSON mode and archive its BENCH_*.json next to the build tree.
#
# Usage: ci/run_tests.sh [build-dir]
#
# Knobs (all optional):
#   TDE_BENCH         bench to archive (default: bench_filtering)
#   TDE_LARGE_ROWS    shrink the bench's large table for CI budgets
#   TDE_SKIP_SANITIZE set to 1 to skip the ASan+UBSan stage
#   TDE_SKIP_TSAN     set to 1 to skip the ThreadSanitizer stage
#
# The suite runs twice up front: once with stats on (default) and once with
# TDE_STATS=0, then the perf-regression gate (ci/check_bench.sh) runs last.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-"$ROOT/build"}"
BENCH="${TDE_BENCH:-bench_filtering}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$(nproc)"

ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

# Second pass with the observability layer off: TDE_STATS=0 drops the
# journal, per-query scopes, and registry counters; every query must still
# produce identical answers (tests that assert on telemetry re-enable it
# explicitly via SetStatsEnabled).
TDE_STATS=0 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

# Second pass with mmap disabled: the pager's read()-fallback path must
# produce identical results — lazy column loads go through plain I/O.
TDE_NO_MMAP=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

# Pass with a tiny sealing threshold: every FlowTable build and append in
# the suite runs segmented (512-row segments), so the whole test surface —
# scans, filters, joins, aggregates, persistence — exercises segmented
# storage, not just segment_test.
TDE_SEGMENT_ROWS=512 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

# Bounded differential sweep beyond the tier-1 default: more query seeds
# against a second dataset shape. The long multi-dataset sweep lives in
# ci/fuzz_extended.sh (nightly); this stage keeps a meaningful slice on
# every commit.
TDE_DIFF_SEEDS="${TDE_DIFF_SEEDS:-800}" TDE_DIFF_DATA_SEED=3 \
TDE_DIFF_ROWS=300 TDE_DIFF_SEG_ROWS=100 \
    "$BUILD/tests/differential_test"

# Same suite under AddressSanitizer + UndefinedBehaviorSanitizer: the
# storage pager and the corruption sweeps must be clean under both.
if [[ "${TDE_SKIP_SANITIZE:-0}" != "1" ]]; then
  SAN_BUILD="$BUILD-asan"
  cmake -B "$SAN_BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTDE_SANITIZE=address,undefined
  cmake --build "$SAN_BUILD" -j"$(nproc)"
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
      ctest --test-dir "$SAN_BUILD" --output-on-failure -j"$(nproc)"
fi

# Same suite under ThreadSanitizer: the shared scheduler pool, parallel
# rollup, exchange, and pager paths run multi-threaded and must be
# race-free. TDE_WORKERS=4 pins the pool size so the concurrency stress
# test contends a known number of workers regardless of the CI host.
if [[ "${TDE_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_BUILD="$BUILD-tsan"
  cmake -B "$TSAN_BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTDE_SANITIZE=thread
  cmake --build "$TSAN_BUILD" -j"$(nproc)"
  TSAN_OPTIONS=halt_on_error=1 TDE_WORKERS=4 \
      ctest --test-dir "$TSAN_BUILD" --output-on-failure -j"$(nproc)"
fi

# Archive one bench run with per-operator stats. Keep CI cheap: the bench's
# large table shrinks unless the caller overrides it.
ARCHIVE="$BUILD/bench-archive"
mkdir -p "$ARCHIVE"
(cd "$ARCHIVE" && TDE_LARGE_ROWS="${TDE_LARGE_ROWS:-2000000}" \
    "$BUILD/bench/$BENCH" --json)
ls -l "$ARCHIVE"/BENCH_*.json

# Perf-regression gate: bench_rollup against the committed baseline
# (>25% relative AND >20ms absolute slowdown fails; see ci/check_bench.sh).
"$ROOT/ci/check_bench.sh" "$BUILD"
