// Query throughput on the imported TPC-H tables: the five queries the
// engine's analytic subset expresses (Q1, Q3, Q4-lite, Q6, Q12), run
// through the SQL frontend and the full strategic/tactical optimizer.
// Not a paper figure — a downstream-user sanity benchmark over the whole
// stack (import, encodings, joins, aggregation).
//
// With --json (or TDE_BENCH_JSON=1), archives per-query timings and the
// per-operator runtime profile as BENCH_tpch.json.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/observe/query_stats.h"
#include "src/workload/tpch_queries.h"

int main(int argc, char** argv) {
  tde::bench::JsonReport report("tpch", argc, argv);
  tde::bench::PrintHeader("TPC-H query suite over the SQL frontend");
  const double sf = tde::bench::ScaleFactor();
  std::printf("TDE_SF=%g\n", sf);
  tde::Engine engine;
  double import_secs = 0;
  {
    tde::bench::Timer t;
    const tde::Status st = tde::LoadTpchTables(&engine, sf);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    import_secs = t.Seconds();
    std::printf("import (lineitem, orders, customer): %.2fs\n", import_secs);
  }
  if (report.enabled()) {
    // The import telemetry rides along with the query records.
    for (const tde::observe::ImportStats& s : engine.import_stats()) {
      report.Add(s.ToJson());
    }
    char rec[128];
    std::snprintf(rec, sizeof(rec),
                  "{\"phase\":\"import\",\"sf\":%g,\"seconds\":%.4f}", sf,
                  import_secs);
    report.Add(rec);
  }
  std::printf("%-8s %-42s %10s %8s\n", "query", "title", "time", "rows");
  for (const tde::TpchQuery& q : tde::TpchQueries()) {
    double secs = 0;
    uint64_t rows = 0;
    std::string operators = "null";
    for (int i = 0; i < 3; ++i) {
      tde::bench::Timer t;
      auto r = engine.ExecuteSql(q.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.id,
                     r.status().ToString().c_str());
        return 1;
      }
      secs += t.Seconds();
      rows = r.value().num_rows();
      if (r.value().stats() != nullptr) {
        operators = r.value().stats()->ToJson();
      }
    }
    std::printf("%-8s %-42s %9.3fs %8llu\n", q.id, q.title, secs / 3,
                static_cast<unsigned long long>(rows));
    if (report.enabled()) {
      char head[160];
      std::snprintf(head, sizeof(head),
                    "{\"query\":\"%s\",\"seconds\":%.6f,\"rows\":%llu,"
                    "\"operators\":",
                    q.id, secs / 3, static_cast<unsigned long long>(rows));
      report.Add(std::string(head) + operators + "}");
    }
  }
  return 0;
}
