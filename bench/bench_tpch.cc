// Query throughput on the imported TPC-H tables: the five queries the
// engine's analytic subset expresses (Q1, Q3, Q4-lite, Q6, Q12), run
// through the SQL frontend and the full strategic/tactical optimizer.
// Not a paper figure — a downstream-user sanity benchmark over the whole
// stack (import, encodings, joins, aggregation).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/tpch_queries.h"

int main() {
  tde::bench::PrintHeader("TPC-H query suite over the SQL frontend");
  const double sf = tde::bench::ScaleFactor();
  std::printf("TDE_SF=%g\n", sf);
  tde::Engine engine;
  {
    tde::bench::Timer t;
    const tde::Status st = tde::LoadTpchTables(&engine, sf);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("import (lineitem, orders, customer): %.2fs\n", t.Seconds());
  }
  std::printf("%-8s %-42s %10s %8s\n", "query", "title", "time", "rows");
  for (const tde::TpchQuery& q : tde::TpchQueries()) {
    double secs = 0;
    uint64_t rows = 0;
    for (int i = 0; i < 3; ++i) {
      tde::bench::Timer t;
      auto r = engine.ExecuteSql(q.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.id,
                     r.status().ToString().c_str());
        return 1;
      }
      secs += t.Seconds();
      rows = r.value().num_rows();
    }
    std::printf("%-8s %-42s %9.3fs %8llu\n", q.id, q.title, secs / 3,
                static_cast<unsigned long long>(rows));
  }
  return 0;
}
