// Sect. 3.2 reproduction: dynamic encoding stabilizes quickly. The paper
// reports that encoding TPC-H lineitem at SF 1 made only two mid-stream
// encoding changes, and the rewrites still cost less I/O than writing the
// unencoded columns.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/textscan/text_scan.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

void Report(const char* label, const std::string& data, char sep) {
  TextScanOptions text;
  text.field_separator = sep;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), {});
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n-- %s --\n", label);
  std::printf("%-18s %-20s %8s %14s %14s\n", "column", "final encoding",
              "changes", "physical_B", "unencoded_B");
  int total_changes = 0;
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    const Column& c = t.value()->column(i);
    total_changes += c.encoding_changes();
    std::printf("%-18s %-20s %8d %14llu %14llu\n", c.name().c_str(),
                EncodingName(c.data()->type()), c.encoding_changes(),
                static_cast<unsigned long long>(c.PhysicalSize()),
                static_cast<unsigned long long>(c.LogicalSize()));
  }
  std::printf("total mid-stream encoding changes: %d (paper: 2 for SF-1 "
              "lineitem)\n", total_changes);
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader("Sect. 3.2 — dynamic encoding stabilization");
  const double sf = tde::bench::ScaleFactor();
  tde::Report("lineitem", tde::GenerateTpchTable(tde::TpchTable::kLineitem, sf),
              '|');
  tde::Report("orders", tde::GenerateTpchTable(tde::TpchTable::kOrders, sf),
              '|');
  return 0;
}
