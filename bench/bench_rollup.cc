// Sect. 8 ablation: index roll-up + parallel ordered aggregation. Compares
// (a) rolling dates up per row and hash-aggregating, against (b) rolling up
// the *index* (one entry per distinct date, MIN(start)/SUM(count)) and
// running ordered aggregation over the ranges — serial and partitioned
// across workers.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/exec/parallel_rollup.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

std::shared_ptr<Table> DailyTable(uint64_t rows) {
  std::vector<Lane> day(rows), value(rows);
  const int64_t start = DaysFromCivil(2000, 1, 1);
  const uint64_t per_day = rows / 3652 + 1;
  uint64_t x = 5;
  for (uint64_t i = 0; i < rows; ++i) {
    day[i] = start + static_cast<int64_t>(i / per_day);
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    value[i] = static_cast<Lane>(x % 1000);
  }
  return FlowTable::Build(testutil::VectorSource::Ints(
                              {{"day", day}, {"value", value}}))
      .MoveValue();
}

double RowLevelRollup(const std::shared_ptr<Table>& table, uint64_t* groups) {
  bench::Timer t;
  auto r = ExecutePlanNode(
      StrategicOptimize(
          Plan::Scan(table)
              .Project({{DateF(DateFunc::kTruncMonth, Col("day")), "m"},
                        {Col("value"), "value"}})
              .Aggregate({"m"}, {{AggKind::kSum, "value", "total"}})
              .root())
          .MoveValue());
  if (!r.ok()) std::exit(1);
  *groups = r.value().num_rows();
  return t.Seconds();
}

double IndexRollup(const std::shared_ptr<Table>& table, int workers,
                   uint64_t* groups) {
  bench::Timer t;
  auto col = table->ColumnByName("day").value();
  auto index = BuildIndexTable(*col).MoveValue();
  auto monthly = RollUpIndex(index, TruncateToMonth).MoveValue();
  ParallelRollupOptions opts;
  opts.value_name = "m";
  opts.value_type = TypeId::kDate;
  opts.payload = {"value"};
  opts.aggs = {{AggKind::kSum, "value", "total"}};
  opts.workers = workers;
  auto r = ParallelIndexedAggregate(table, monthly, opts);
  if (!r.ok()) std::exit(1);
  uint64_t n = 0;
  for (const Block& b : r.value().blocks) n += b.rows();
  *groups = n;
  return t.Seconds();
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader(
      "Sect. 8 — index roll-up & parallel ordered aggregation");
  auto table = tde::DailyTable(4000000);
  std::printf("table: %llu rows, day column %s\n",
              static_cast<unsigned long long>(table->rows()),
              tde::EncodingName(
                  table->ColumnByName("day").value()->data()->type()));
  uint64_t g1 = 0, g2 = 0;
  double row_s = 0, idx1_s = 0, idx4_s = 0;
  for (int i = 0; i < 3; ++i) {
    row_s += tde::RowLevelRollup(table, &g1);
    idx1_s += tde::IndexRollup(table, 1, &g2);
    idx4_s += tde::IndexRollup(table, 4, &g2);
  }
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "per-row TRUNC_MONTH + hash aggregation", row_s / 3,
              static_cast<unsigned long long>(g1));
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "index roll-up + ordered aggregation (1 worker)", idx1_s / 3,
              static_cast<unsigned long long>(g2));
  std::printf("%-44s %8.3fs\n",
              "index roll-up + ordered aggregation (4 workers)", idx4_s / 3);
  std::printf(
      "\nshape: the roll-up computes TRUNC_MONTH once per distinct day "
      "(~3.7k) instead of once per row (4M), so plan (b) should win "
      "decisively; worker scaling is bounded by the single core here.\n");
  return 0;
}
