// Sect. 8 ablation: index roll-up + parallel ordered aggregation. Compares
// (a) rolling dates up per row and hash-aggregating, against (b) rolling up
// the *index* (one entry per distinct date, MIN(start)/SUM(count)) and
// running ordered aggregation over the ranges — serial and partitioned
// across workers.
//
// Also ablates the two compressed-domain aggregation rewrites against their
// decoded controls (kill switches off): dictionary-code grouping with late
// key materialization, and run-level aggregate folding over an RLE column.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/exec/parallel_rollup.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "tests/test_util.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

std::shared_ptr<Table> DailyTable(uint64_t rows) {
  std::vector<Lane> day(rows), value(rows);
  const int64_t start = DaysFromCivil(2000, 1, 1);
  const uint64_t per_day = rows / 3652 + 1;
  uint64_t x = 5;
  for (uint64_t i = 0; i < rows; ++i) {
    day[i] = start + static_cast<int64_t>(i / per_day);
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    value[i] = static_cast<Lane>(x % 1000);
  }
  return FlowTable::Build(testutil::VectorSource::Ints(
                              {{"day", day}, {"value", value}}))
      .MoveValue();
}

double RowLevelRollup(const std::shared_ptr<Table>& table, uint64_t* groups) {
  bench::Timer t;
  auto r = ExecutePlanNode(
      StrategicOptimize(
          Plan::Scan(table)
              .Project({{DateF(DateFunc::kTruncMonth, Col("day")), "m"},
                        {Col("value"), "value"}})
              .Aggregate({"m"}, {{AggKind::kSum, "value", "total"}})
              .root())
          .MoveValue());
  if (!r.ok()) std::exit(1);
  *groups = r.value().num_rows();
  return t.Seconds();
}

double IndexRollup(const std::shared_ptr<Table>& table, int workers,
                   uint64_t* groups) {
  bench::Timer t;
  auto col = table->ColumnByName("day").value();
  auto index = BuildIndexTable(*col).MoveValue();
  auto monthly = RollUpIndex(index, TruncateToMonth).MoveValue();
  ParallelRollupOptions opts;
  opts.value_name = "m";
  opts.value_type = TypeId::kDate;
  opts.payload = {"value"};
  opts.aggs = {{AggKind::kSum, "value", "total"}};
  opts.workers = workers;
  auto r = ParallelIndexedAggregate(table, monthly, opts);
  if (!r.ok()) std::exit(1);
  uint64_t n = 0;
  for (const Block& b : r.value().blocks) n += b.rows();
  *groups = n;
  return t.Seconds();
}

// 4M rows, 16 distinct strings: the shape where per-row heap lookups and
// collation dominate a GROUP BY and dictionary-code grouping should win.
std::shared_ptr<Table> FruitTable(uint64_t rows) {
  static const char* kNames[] = {
      "apple",  "banana", "cherry", "dragonfruit", "elderberry", "fig",
      "grape",  "honeydew", "kiwi", "lemon",       "mango",      "nectarine",
      "orange", "papaya", "quince", "raspberry"};
  std::vector<std::string> s(rows);
  std::vector<Lane> value(rows);
  uint64_t x = 11;
  for (uint64_t i = 0; i < rows; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    s[i] = kNames[x % 16];
    value[i] = static_cast<Lane>(x % 1000);
  }
  auto src = testutil::VectorSource::Ints({{"value", value}});
  src->AddStringColumn("s", s);
  return FlowTable::Build(std::move(src)).MoveValue();
}

// Sorted integer column with 1000-row runs: run-length encoded, so the
// aggregate can fold whole (value, count) runs instead of expanding rows.
std::shared_ptr<Table> RunTable(uint64_t rows) {
  std::vector<Lane> g(rows);
  for (uint64_t i = 0; i < rows; ++i) g[i] = static_cast<Lane>(i / 1000);
  return FlowTable::Build(testutil::VectorSource::Ints({{"g", g}}))
      .MoveValue();
}

double DictGroupBy(const std::shared_ptr<Table>& table, bool compressed,
                   uint64_t* groups) {
  StrategicOptions opts;
  opts.enable_dict_grouping = compressed;
  bench::Timer t;
  auto r = ExecutePlanNode(
      StrategicOptimize(Plan::Scan(table)
                            .Aggregate({"s"}, {{AggKind::kSum, "value",
                                                "total"}})
                            .root(),
                        opts)
          .MoveValue());
  if (!r.ok()) std::exit(1);
  *groups = r.value().num_rows();
  return t.Seconds();
}

double RunSumCount(const std::shared_ptr<Table>& table, bool compressed,
                   uint64_t* groups) {
  StrategicOptions opts;
  opts.enable_run_aggregation = compressed;
  bench::Timer t;
  auto r = ExecutePlanNode(
      StrategicOptimize(Plan::Scan(table)
                            .Aggregate({"g"}, {{AggKind::kSum, "g", "total"},
                                               {AggKind::kCountStar, "",
                                                "n"}})
                            .root(),
                        opts)
          .MoveValue());
  if (!r.ok()) std::exit(1);
  *groups = r.value().num_rows();
  return t.Seconds();
}

/// One gate-able record: a named measurement in milliseconds. The names are
/// the stable contract with ci/BENCH_baseline.json — renaming one means
/// re-baselining (ci/check_bench.sh --rebaseline).
void Report(bench::JsonReport* report, const char* name, double seconds,
            uint64_t groups) {
  if (!report->enabled()) return;
  char rec[160];
  std::snprintf(rec, sizeof(rec),
                "{\"name\":\"%s\",\"ms\":%.4f,\"groups\":%llu}", name,
                seconds * 1000, static_cast<unsigned long long>(groups));
  report->Add(rec);
}

}  // namespace
}  // namespace tde

int main(int argc, char** argv) {
  tde::bench::JsonReport report("rollup", argc, argv);
  tde::bench::PrintHeader(
      "Sect. 8 — index roll-up & parallel ordered aggregation");
  auto table = tde::DailyTable(tde::bench::RollupRows());
  std::printf("table: %llu rows, day column %s\n",
              static_cast<unsigned long long>(table->rows()),
              tde::EncodingName(
                  table->ColumnByName("day").value()->data()->type()));
  uint64_t g1 = 0, g2 = 0;
  double row_s = 0, idx1_s = 0, idx4_s = 0;
  for (int i = 0; i < 3; ++i) {
    row_s += tde::RowLevelRollup(table, &g1);
    idx1_s += tde::IndexRollup(table, 1, &g2);
    idx4_s += tde::IndexRollup(table, 4, &g2);
  }
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "per-row TRUNC_MONTH + hash aggregation", row_s / 3,
              static_cast<unsigned long long>(g1));
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "index roll-up + ordered aggregation (1 worker)", idx1_s / 3,
              static_cast<unsigned long long>(g2));
  std::printf("%-44s %8.3fs\n",
              "index roll-up + ordered aggregation (4 workers)", idx4_s / 3);
  tde::Report(&report, "rowlevel_rollup", row_s / 3, g1);
  tde::Report(&report, "index_rollup_1w", idx1_s / 3, g2);
  tde::Report(&report, "index_rollup_4w", idx4_s / 3, g2);
  std::printf(
      "\nshape: the roll-up computes TRUNC_MONTH once per distinct day "
      "(~3.7k) instead of once per row (4M), so plan (b) should win "
      "decisively; worker scaling is bounded by the single core here.\n");

  tde::bench::PrintHeader(
      "Compressed-domain aggregation vs decoded controls");
  auto fruit = tde::FruitTable(tde::bench::RollupRows());
  uint64_t gd = 0;
  double dict_on = 0, dict_off = 0;
  for (int i = 0; i < 3; ++i) {
    dict_on += tde::DictGroupBy(fruit, /*compressed=*/true, &gd);
    dict_off += tde::DictGroupBy(fruit, /*compressed=*/false, &gd);
  }
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "string GROUP BY, dictionary-code keys", dict_on / 3,
              static_cast<unsigned long long>(gd));
  std::printf("%-44s %8.3fs  speedup %.2fx\n",
              "string GROUP BY, per-row heap keys", dict_off / 3,
              dict_off / dict_on);
  tde::Report(&report, "dict_groupby_compressed", dict_on / 3, gd);
  tde::Report(&report, "dict_groupby_decoded", dict_off / 3, gd);

  auto runs = tde::RunTable(tde::bench::RollupRows());
  std::printf("run table: %llu rows, g column %s\n",
              static_cast<unsigned long long>(runs->rows()),
              tde::EncodingName(
                  runs->ColumnByName("g").value()->data()->type()));
  uint64_t gr = 0;
  double fold_on = 0, fold_off = 0;
  for (int i = 0; i < 3; ++i) {
    fold_on += tde::RunSumCount(runs, /*compressed=*/true, &gr);
    fold_off += tde::RunSumCount(runs, /*compressed=*/false, &gr);
  }
  std::printf("%-44s %8.3fs (%llu groups)\n",
              "SUM+COUNT over RLE, run folding", fold_on / 3,
              static_cast<unsigned long long>(gr));
  std::printf("%-44s %8.3fs  speedup %.2fx\n",
              "SUM+COUNT over RLE, expanded rows", fold_off / 3,
              fold_off / fold_on);
  tde::Report(&report, "run_fold_compressed", fold_on / 3, gr);
  tde::Report(&report, "run_fold_decoded", fold_off / 3, gr);
  return 0;
}
