// Fig. 4 reproduction: import latency of the TextScan/FlowTable system on
// the two large tables (TPC-H lineitem and Flights), for the measurement
// ladder of Sect. 6.1:
//
//   Bandwidth  — summing all the bytes of the text file
//   Tokenize   — finding field boundaries
//   Split      — splitting into columns without parsing
//   Scalars    — parsing only numbers/dates (strings just split)
//   All        — parsing all columns, x {acceleration, encodings} on/off
//
// Paper shape: with encoding and acceleration on, "All" is comparable to
// "Split" — there is no benefit to deferred parsing.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/storage/database_file.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

double MBps(size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

void Row(const char* name, size_t bytes, double secs) {
  std::printf("%-34s %8.2fs %10.1f MB/s\n", name, secs, MBps(bytes, secs));
}

// Bandwidth: sum all bytes.
double Bandwidth(const std::string& data) {
  bench::Timer t;
  uint64_t sum = 0;
  for (unsigned char c : data) sum += c;
  volatile uint64_t sink = sum;
  (void)sink;
  return t.Seconds();
}

// Tokenize: find record and field boundaries only.
double Tokenize(const std::string& data, char sep) {
  bench::Timer t;
  uint64_t fields = 0;
  for (char c : data) fields += (c == sep) + (c == '\n');
  volatile uint64_t sink = fields;
  (void)sink;
  return t.Seconds();
}

// Split: copy every field into a per-column byte buffer, no parsing.
double Split(const std::string& data, char sep, size_t ncols) {
  bench::Timer t;
  std::vector<std::string> columns(ncols);
  for (auto& c : columns) c.reserve(data.size() / ncols + 16);
  size_t col = 0, start = 0;
  for (size_t i = 0; i <= data.size(); ++i) {
    const char c = i < data.size() ? data[i] : '\n';
    if (c == sep || c == '\n') {
      if (col < ncols) {
        columns[col].append(data, start, i - start);
        columns[col].push_back('\n');
      }
      start = i + 1;
      col = (c == '\n') ? 0 : col + 1;
    }
  }
  volatile size_t sink = columns[0].size();
  (void)sink;
  return t.Seconds();
}

// Scalars / All: TextScan -> FlowTable with the given configuration.
double Import(const std::string& data, char sep, bool scalars_only,
              bool acceleration, bool encodings, uint64_t* physical) {
  TextScanOptions text;
  text.field_separator = sep;
  if (scalars_only) {
    auto probe = TextScan::FromBuffer(data, text);
    if (!probe->Open().ok()) std::exit(1);
    for (const Field& f : probe->file_schema().fields()) {
      if (f.type != TypeId::kString) text.columns.push_back(f.name);
    }
  }
  bench::Timer t;
  auto scan = TextScan::FromBuffer(data, text);
  FlowTableOptions flow;
  flow.heap_acceleration = acceleration;
  flow.enable_encodings = encodings;
  auto table = FlowTable::Build(std::move(scan), flow);
  if (!table.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  // The import's endpoint is the single-file database copy (Sect. 2.3.3):
  // include its write so encodings get credit for the I/O they save.
  Database db;
  db.AddTable(table.value());
  if (!WriteDatabase(db, "/tmp/tde_bench_parsing.tde").ok()) std::exit(1);
  if (physical != nullptr) *physical = table.value()->PhysicalSize();
  return t.Seconds();
}

void RunFile(const char* label, const std::string& data, char sep,
             size_t ncols) {
  std::printf("\n-- %s (%.1f MB) --\n", label,
              static_cast<double>(data.size()) / 1e6);
  Row("bandwidth", data.size(), Bandwidth(data));
  Row("tokenize", data.size(), Tokenize(data, sep));
  Row("split", data.size(), Split(data, sep, ncols));
  for (const bool acc : {false, true}) {
    for (const bool enc : {false, true}) {
      char name[80];
      std::snprintf(name, sizeof(name), "scalars acc=%d enc=%d", acc, enc);
      Row(name, data.size(), Import(data, sep, true, acc, enc, nullptr));
    }
  }
  for (const bool acc : {false, true}) {
    for (const bool enc : {false, true}) {
      char name[80];
      std::snprintf(name, sizeof(name), "all     acc=%d enc=%d", acc, enc);
      Row(name, data.size(), Import(data, sep, false, acc, enc, nullptr));
    }
  }
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader("Fig. 4 — parsing performance (Sect. 6.1)");
  const double sf = tde::bench::ScaleFactor();
  std::printf("TDE_SF=%g TDE_FLIGHTS_ROWS=%llu (paper: SF-30 / 67M rows)\n",
              sf, static_cast<unsigned long long>(tde::bench::FlightsRows()));
  {
    const std::string lineitem =
        tde::GenerateTpchTable(tde::TpchTable::kLineitem, sf);
    tde::RunFile("lineitem", lineitem, '|', 16);
  }
  {
    const std::string flights =
        tde::GenerateFlights(tde::bench::FlightsRows());
    tde::RunFile("Flights", flights, ',', 12);
  }
  std::printf(
      "\npaper shape check: 'all acc=1 enc=1' should be comparable to "
      "'split' — no benefit to deferred parsing.\n");
  return 0;
}
