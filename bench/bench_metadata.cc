// Fig. 7 reproduction: number of metadata properties detected during
// import, with and without encodings, split into the SF-scale table set
// and the two large tables.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

int DetectedIn(const std::string& data, char sep, bool enc) {
  TextScanOptions text;
  text.field_separator = sep;
  FlowTableOptions flow;
  flow.enable_encodings = enc;
  flow.heap_acceleration = true;  // paper: acceleration on for these tests
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), flow);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  int n = 0;
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    n += t.value()->column(i).metadata().DetectedCount();
  }
  return n;
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader("Fig. 7 — metadata properties detected (Sect. 6.4)");
  const double sf = tde::bench::ScaleFactor();
  std::printf("%-14s %14s %14s\n", "table set", "encodings=off",
              "encodings=on");
  int off_small = 0, on_small = 0;
  for (tde::TpchTable tt : tde::AllTpchTables()) {
    if (tt == tde::TpchTable::kLineitem) continue;  // counted as "large"
    const std::string data = tde::GenerateTpchTable(tt, sf);
    off_small += tde::DetectedIn(data, '|', false);
    on_small += tde::DetectedIn(data, '|', true);
  }
  std::printf("%-14s %14d %14d\n", "SF tables", off_small, on_small);

  const std::string lineitem =
      tde::GenerateTpchTable(tde::TpchTable::kLineitem, sf);
  const std::string flights =
      tde::GenerateFlights(tde::bench::FlightsRows());
  const int off_large = tde::DetectedIn(lineitem, '|', false) +
                        tde::DetectedIn(flights, ',', false);
  const int on_large = tde::DetectedIn(lineitem, '|', true) +
                       tde::DetectedIn(flights, ',', true);
  std::printf("%-14s %14d %14d\n", "large tables", off_large, on_large);
  std::printf(
      "\npaper shape: most properties are only detected with encodings on; "
      "the few detected without owe it to fortuitous circumstances "
      "(accelerator statistics, sorted arrival).\n");
  return 0;
}
