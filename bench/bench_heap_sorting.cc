// Fig. 6 reproduction: sorted string heaps, with and without encodings.
//
// Paper shape: without encodings only ~5 heaps are sorted (fortuitous
// arrival order); with encodings on, every dictionary-encodable string
// column gets a sorted heap except l_comment (large, low-duplication).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

struct Counts {
  int string_columns = 0;
  int sorted_heaps = 0;
};

Counts CountSorted(const std::string& data, char sep, bool enc,
                   double* seconds) {
  TextScanOptions text;
  text.field_separator = sep;
  FlowTableOptions flow;
  flow.enable_encodings = enc;
  bench::Timer timer;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), flow);
  *seconds = timer.Seconds();
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  Counts c;
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    const Column& col = t.value()->column(i);
    if (col.type() != TypeId::kString) continue;
    ++c.string_columns;
    if (col.heap()->sorted()) {
      ++c.sorted_heaps;
    } else {
      std::printf("    unsorted: %s.%s (%s)\n", t.value()->name().c_str(),
                  col.name().c_str(), EncodingName(col.data()->type()));
    }
  }
  return c;
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader("Fig. 6 — sorted string heaps (Sect. 6.3)");
  const double sf = tde::bench::ScaleFactor();
  for (const bool enc : {false, true}) {
    std::printf("\nencodings=%d:\n", enc);
    int total_cols = 0, total_sorted = 0;
    double import_total = 0;
    for (tde::TpchTable tt : tde::AllTpchTables()) {
      double secs = 0;
      const auto c = tde::CountSorted(tde::GenerateTpchTable(tt, sf), '|',
                                      enc, &secs);
      total_cols += c.string_columns;
      total_sorted += c.sorted_heaps;
      import_total += secs;
      std::printf("  %-10s %d/%d sorted heaps\n", tde::TpchTableName(tt),
                  c.sorted_heaps, c.string_columns);
    }
    double secs = 0;
    const auto fc = tde::CountSorted(
        tde::GenerateFlights(tde::bench::FlightsRows()), ',', enc, &secs);
    total_cols += fc.string_columns;
    total_sorted += fc.sorted_heaps;
    import_total += secs;
    std::printf("  %-10s %d/%d sorted heaps\n", "Flights", fc.sorted_heaps,
                fc.string_columns);
    std::printf("  TOTAL %d/%d sorted heaps, import %.2fs\n", total_sorted,
                total_cols, import_total);
  }
  std::printf(
      "\npaper shape: ~5 sorted without encodings; all but l_comment "
      "sorted with encodings, at no discernible import cost.\n");
  return 0;
}
