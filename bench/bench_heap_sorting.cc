// Fig. 6 reproduction: sorted string heaps, with and without encodings.
//
// Paper shape: without encodings only ~5 heaps are sorted (fortuitous
// arrival order); with encodings on, every dictionary-encodable string
// column gets a sorted heap except l_comment (large, low-duplication).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/exec/flow_table.h"
#include "src/plan/strategic.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

struct Counts {
  int string_columns = 0;
  int sorted_heaps = 0;
};

Counts CountSorted(const std::string& data, char sep, bool enc,
                   double* seconds) {
  TextScanOptions text;
  text.field_separator = sep;
  FlowTableOptions flow;
  flow.enable_encodings = enc;
  bench::Timer timer;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), flow);
  *seconds = timer.Seconds();
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  Counts c;
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    const Column& col = t.value()->column(i);
    if (col.type() != TypeId::kString) continue;
    ++c.string_columns;
    if (col.heap()->sorted()) {
      ++c.sorted_heaps;
    } else {
      std::printf("    unsorted: %s.%s (%s)\n", t.value()->name().c_str(),
                  col.name().c_str(), EncodingName(col.data()->type()));
    }
  }
  return c;
}

// --- Compressed-domain ORDER BY / Top-N -----------------------------------

/// Synthetic events table: `k` is locally jumbled but zone-monotone (every
/// segment's key range is disjoint, no row-to-row sorted order), `s` is a
/// 32-word dictionary column, `r` runs in blocks of 1024.
std::string SortCsv(uint64_t rows) {
  static const char* kWords[] = {
      "apple",  "apricot", "banana", "bilberry", "cherry", "citron",
      "damson", "durian",  "elder",  "feijoa",   "fig",    "grape",
      "guava",  "jujube",  "kiwi",   "kumquat",  "lemon",  "lime",
      "longan", "loquat",  "lychee", "mango",    "medlar", "melon",
      "mulberry", "nectarine", "olive", "papaya", "peach", "pear",
      "plum",   "quince"};
  std::string csv = "k,s,r\n";
  csv.reserve(rows * 24 + 8);
  for (uint64_t i = 0; i < rows; ++i) {
    csv += std::to_string(i ^ 3);
    csv += ',';
    csv += kWords[(i * 7) % 32];
    csv += ',';
    csv += std::to_string(i / 1024);
    csv += '\n';
  }
  return csv;
}

double TimeSql(const Engine& engine, const std::string& sql,
               const StrategicOptions& strategic, uint64_t* rows_out) {
  bench::Timer t;
  auto r = engine.ExecuteSql(sql, strategic);
  const double secs = t.Seconds();
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  *rows_out = r.value().num_rows();
  return secs;
}

/// One gate-able record; names are the stable contract with
/// ci/BENCH_baseline.json (rename -> rebaseline).
void Report(bench::JsonReport* report, const char* name, double seconds,
            uint64_t rows) {
  if (!report->enabled()) return;
  char rec[160];
  std::snprintf(rec, sizeof(rec),
                "{\"name\":\"%s\",\"ms\":%.4f,\"groups\":%llu}", name,
                seconds * 1000, static_cast<unsigned long long>(rows));
  report->Add(rec);
}

void BenchOrderBy(bench::JsonReport* report) {
  bench::PrintHeader("Compressed-domain ORDER BY / Top-N");
  const uint64_t rows = bench::SortRows();
  const std::string csv = SortCsv(rows);
  Engine engine;
  // `events` segments at the default size so Top-N sees per-segment
  // zones; `events_mono` keeps the run directory table-wide for the
  // run-index sort.
  if (!engine.ImportTextBuffer(csv, "events", {}).ok()) std::exit(1);
  ImportOptions mono;
  mono.flow.segment_rows = rows;
  if (!engine.ImportTextBuffer(csv, "events_mono", mono).ok()) std::exit(1);
  std::printf("table: %llu rows\n", static_cast<unsigned long long>(rows));

  const StrategicOptions on;
  StrategicOptions no_topn = on;
  no_topn.enable_topn = false;
  StrategicOptions no_dict = on;
  no_dict.enable_dict_sort = false;
  struct Case {
    const char* name;
    const char* label;
    std::string sql;
    const StrategicOptions* strategic;
  };
  const Case cases[] = {
      {"topn_100", "ORDER BY k LIMIT 100 (Top-N + zone skip)",
       "SELECT * FROM events ORDER BY k LIMIT 100", &on},
      {"fullsort_100", "ORDER BY k LIMIT 100 (full sort, Top-N off)",
       "SELECT * FROM events ORDER BY k LIMIT 100", &no_topn},
      {"dict_sort", "ORDER BY s (dict-code keys)",
       "SELECT * FROM events ORDER BY s, k", &on},
      {"collate_sort", "ORDER BY s (per-row collation)",
       "SELECT * FROM events ORDER BY s, k", &no_dict},
      {"run_sort", "ORDER BY r (run-index ordered retrieval)",
       "SELECT * FROM events_mono ORDER BY r", &on},
  };
  double secs[5] = {};
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t c = 0; c < 5; ++c) {
      uint64_t out = 0;
      secs[c] += TimeSql(engine, cases[c].sql, *cases[c].strategic, &out);
    }
  }
  for (size_t c = 0; c < 5; ++c) {
    uint64_t out = 0;
    TimeSql(engine, cases[c].sql, *cases[c].strategic, &out);
    std::printf("%-46s %8.3fs\n", cases[c].label, secs[c] / kReps);
    Report(report, cases[c].name, secs[c] / kReps, out);
  }
  std::printf("\nshape: Top-N keeps a 100-row heap and zone-skips losing "
              "segments, so it should beat the full sort >=5x; dict keys "
              "compare as integers, so the collation control trails.\n");
}

}  // namespace
}  // namespace tde

int main(int argc, char** argv) {
  tde::bench::JsonReport report("sorting", argc, argv);
  tde::bench::PrintHeader("Fig. 6 — sorted string heaps (Sect. 6.3)");
  const double sf = tde::bench::ScaleFactor();
  for (const bool enc : {false, true}) {
    std::printf("\nencodings=%d:\n", enc);
    int total_cols = 0, total_sorted = 0;
    double import_total = 0;
    for (tde::TpchTable tt : tde::AllTpchTables()) {
      double secs = 0;
      const auto c = tde::CountSorted(tde::GenerateTpchTable(tt, sf), '|',
                                      enc, &secs);
      total_cols += c.string_columns;
      total_sorted += c.sorted_heaps;
      import_total += secs;
      std::printf("  %-10s %d/%d sorted heaps\n", tde::TpchTableName(tt),
                  c.sorted_heaps, c.string_columns);
    }
    double secs = 0;
    const auto fc = tde::CountSorted(
        tde::GenerateFlights(tde::bench::FlightsRows()), ',', enc, &secs);
    total_cols += fc.string_columns;
    total_sorted += fc.sorted_heaps;
    import_total += secs;
    std::printf("  %-10s %d/%d sorted heaps\n", "Flights", fc.sorted_heaps,
                fc.string_columns);
    std::printf("  TOTAL %d/%d sorted heaps, import %.2fs\n", total_sorted,
                total_cols, import_total);
  }
  std::printf(
      "\npaper shape: ~5 sorted without encodings; all but l_comment "
      "sorted with encodings, at no discernible import cost.\n");
  tde::BenchOrderBy(&report);
  return 0;
}
