#ifndef TDE_BENCH_BENCH_UTIL_H_
#define TDE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tde {
namespace bench {

/// Scale factor for TPC-H-based benches (paper: SF-1 and SF-30; scaled to
/// laptop/CI budgets — see DESIGN.md substitutions). Override with TDE_SF.
inline double ScaleFactor() {
  if (const char* e = std::getenv("TDE_SF")) return std::atof(e);
  return 0.01;
}

/// Rows of the synthetic Flights file. Override with TDE_FLIGHTS_ROWS.
inline uint64_t FlightsRows() {
  if (const char* e = std::getenv("TDE_FLIGHTS_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 200000;
}

/// Rows of the "large" run-length table of Fig. 10 (paper: 1B). Override
/// with TDE_LARGE_ROWS.
inline uint64_t LargeRleRows() {
  if (const char* e = std::getenv("TDE_LARGE_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 16000000;
}

/// Rows of bench_rollup's tables (paper shape: 4M). Override with
/// TDE_ROLLUP_ROWS; ci/check_bench.sh shrinks it for the regression gate.
inline uint64_t RollupRows() {
  if (const char* e = std::getenv("TDE_ROLLUP_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 4000000;
}

/// Rows of bench_heap_sorting's ORDER BY / Top-N table (acceptance runs
/// use 10M). Override with TDE_SORT_ROWS; ci/check_bench.sh shrinks it
/// for the regression gate.
inline uint64_t SortRows() {
  if (const char* e = std::getenv("TDE_SORT_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 2000000;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Machine-readable bench output: pass `--json` (or set TDE_BENCH_JSON=1)
/// and the bench archives its results — including per-operator runtime
/// stats where the bench provides them (observe::QueryStats::ToJson) — as
/// BENCH_<name>.json in the working directory, one JSON document per run.
class JsonReport {
 public:
  JsonReport(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
    if (const char* e = std::getenv("TDE_BENCH_JSON")) {
      if (e[0] != '\0' && e[0] != '0') enabled_ = true;
    }
  }

  bool enabled() const { return enabled_; }

  /// Appends one result record (a rendered JSON object).
  void Add(std::string record) {
    if (enabled_) records_.push_back(std::move(record));
  }

  ~JsonReport() {
    if (!enabled_ || records_.empty()) return;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"results\":[", name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s", i > 0 ? "," : "", records_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  bool enabled_ = false;
  std::vector<std::string> records_;
};

}  // namespace bench
}  // namespace tde

#endif  // TDE_BENCH_BENCH_UTIL_H_
