#ifndef TDE_BENCH_BENCH_UTIL_H_
#define TDE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tde {
namespace bench {

/// Scale factor for TPC-H-based benches (paper: SF-1 and SF-30; scaled to
/// laptop/CI budgets — see DESIGN.md substitutions). Override with TDE_SF.
inline double ScaleFactor() {
  if (const char* e = std::getenv("TDE_SF")) return std::atof(e);
  return 0.01;
}

/// Rows of the synthetic Flights file. Override with TDE_FLIGHTS_ROWS.
inline uint64_t FlightsRows() {
  if (const char* e = std::getenv("TDE_FLIGHTS_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 200000;
}

/// Rows of the "large" run-length table of Fig. 10 (paper: 1B). Override
/// with TDE_LARGE_ROWS.
inline uint64_t LargeRleRows() {
  if (const char* e = std::getenv("TDE_LARGE_ROWS")) {
    return static_cast<uint64_t>(std::atoll(e));
  }
  return 16000000;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace tde

#endif  // TDE_BENCH_BENCH_UTIL_H_
