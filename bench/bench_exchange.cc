// Sect. 4.3 reproduction: the cost of order-preserving exchange routing and
// why the optimizer pays it — unordered routing disturbs value order and
// degrades the downstream encoding (a physically larger column).

#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "src/exec/exchange.h"
#include "src/exec/filter.h"
#include "src/exec/flow_table.h"
#include "src/exec/instrument.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/workload/rle_data.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

struct RunResult {
  double seconds = 0;
  uint64_t physical = 0;
  EncodingType encoding = EncodingType::kUncompressed;
};

RunResult RunOnce(const std::shared_ptr<Table>& table, bool ordered) {
  bench::Timer t;
  // Scan -> Exchange[filter] -> FlowTable: the Sect. 4.3 example of a
  // parallelized filter whose output is re-encoded.
  auto plan = Plan::Scan(table)
                  .Filter(Lt(Col("primary"), Int(90)))
                  .ExchangeBy(4, ordered)
                  .Materialize();
  StrategicOptions opts;
  opts.enable_rank_join = false;
  opts.enable_invisible_join = false;
  opts.enforce_order_preserving_exchange = false;  // measure both ways
  auto built = BuildExecutable(
      StrategicOptimize(plan.root(), opts).MoveValue());
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<Block> blocks;
  if (!DrainOperator(built.value().op.get(), &blocks).ok()) std::exit(1);
  RunResult r;
  r.seconds = t.Seconds();
  auto* ft = dynamic_cast<FlowTable*>(Unwrap(built.value().op.get()));
  const Column& col = *ft->table()->ColumnByName("primary").value();
  r.physical = col.PhysicalSize();
  r.encoding = col.data()->type();
  return r;
}

}  // namespace
}  // namespace tde

namespace tde {
namespace {

/// Quantifies the order sensitivity of encodings directly (Sect. 4.3):
/// encode the same filtered column with blocks in scan order vs shuffled
/// into the arrival order a multi-core unordered exchange would produce.
void BlockOrderAblation(const std::shared_ptr<Table>& table) {
  TableScanOptions scan_opts;
  scan_opts.columns = {"primary"};
  auto scan = std::make_unique<TableScan>(table, std::move(scan_opts));
  Filter filter(std::move(scan), Lt(Col("primary"), Int(90)));
  std::vector<Block> blocks;
  if (!DrainOperator(&filter, &blocks).ok()) std::exit(1);

  auto encode = [&](const std::vector<Block>& in) {
    DynamicEncoderOptions opts;
    DynamicEncoder enc(opts);
    for (const Block& b : in) {
      if (!enc.Append(b.columns[0].lanes.data(), b.rows()).ok()) {
        std::exit(1);
      }
    }
    auto col = enc.Finalize();
    if (!col.ok()) std::exit(1);
    return std::make_pair(col.value().stream->PhysicalSize(),
                          col.value().stream->type());
  };

  const auto ordered = encode(blocks);
  // Deterministic shuffle simulating out-of-order worker completion.
  uint64_t x = 12345;
  for (size_t i = blocks.size(); i > 1; --i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::swap(blocks[i - 1], blocks[x % i]);
  }
  const auto shuffled = encode(blocks);
  std::printf("\nblock-order ablation of the same filtered column:\n");
  std::printf("  ordered blocks:  %10llu bytes (%s)\n",
              static_cast<unsigned long long>(ordered.first),
              EncodingName(ordered.second));
  std::printf("  shuffled blocks: %10llu bytes (%s) — %.1fx larger\n",
              static_cast<unsigned long long>(shuffled.first),
              EncodingName(shuffled.second),
              static_cast<double>(shuffled.first) /
                  static_cast<double>(ordered.first));
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader(
      "Sect. 4.3 — order-preserving exchange routing overhead");
  auto table = tde::MakeRleTable(2000000).MoveValue();
  double ordered_s = 0, unordered_s = 0;
  tde::RunResult ordered, unordered;
  for (int i = 0; i < 3; ++i) {
    ordered = tde::RunOnce(table, true);
    unordered = tde::RunOnce(table, false);
    ordered_s += ordered.seconds;
    unordered_s += unordered.seconds;
  }
  ordered_s /= 3;
  unordered_s /= 3;
  std::printf("%-24s %10s %14s %s\n", "routing", "time", "encoded_bytes",
              "encoding of primary");
  std::printf("%-24s %9.2fs %14llu %s\n", "order-preserving", ordered_s,
              static_cast<unsigned long long>(ordered.physical),
              tde::EncodingName(ordered.encoding));
  std::printf("%-24s %9.2fs %14llu %s\n", "unordered", unordered_s,
              static_cast<unsigned long long>(unordered.physical),
              tde::EncodingName(unordered.encoding));
  std::printf("ordering overhead: %.1f%% (paper: 10-15%%)\n",
              100.0 * (ordered_s - unordered_s) / unordered_s);
  std::printf(
      "(single-core runs rarely reorder blocks in practice; the ablation "
      "below shows what reordering does to the encoding)\n");
  tde::BlockOrderAblation(table);
  return 0;
}
