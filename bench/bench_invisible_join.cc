// Sect. 4.1.2 reproduction: tactical optimization of an invisible join.
// A date column is dictionary compressed with a sorted dictionary; a range
// predicate filters the DictionaryTable to a dense token range, which
// FlowTable detects and the Join operator upgrades to a fetch join instead
// of hashing.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/exec/dictionary_table.h"
#include "src/exec/filter.h"
#include "src/exec/hash_join.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

std::shared_ptr<Table> MakeDateTable(uint64_t rows) {
  // Two years of dates, dictionary compressed via AlterColumn.
  std::string csv = "d,v\n";
  csv.reserve(rows * 16);
  const int64_t start = DaysFromCivil(2012, 1, 1);
  const uint64_t per_day = std::max<uint64_t>(1, rows / 730);
  for (uint64_t i = 0; i < rows; ++i) {
    csv += FormatLane(TypeId::kDate,
                      start + static_cast<int64_t>(i / per_day % 730));
    csv += ",";
    csv += std::to_string(i % 1000);
    csv += "\n";
  }
  Engine engine;
  auto t = engine.ImportTextBuffer(csv, "dates").MoveValue();
  auto col = t->ColumnByName("d").value();
  const Status st = AlterColumnToDictionary(col.get());
  if (!st.ok()) {
    std::fprintf(stderr, "alter failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return t;
}

struct JoinRun {
  double seconds;
  uint64_t rows;
  JoinStrategy strategy;
};

JoinRun RunJoin(const std::shared_ptr<Table>& table, bool reassert_dense) {
  bench::Timer timer;
  auto col = table->ColumnByName("d").value();
  auto dict = BuildDictionaryTable(col).MoveValue();
  // Range predicate on the date values, pushed to the dictionary side.
  auto pred = And(Ge(Col("d"), Date(2012, 6, 1)),
                  Lt(Col("d"), Date(2012, 9, 1)));
  auto inner_flow = std::make_unique<Filter>(
      std::make_unique<TableScan>(dict), pred);
  FlowTableOptions ft;
  ft.allowed = kAllowRandomAccess;
  // With post-processing off, FlowTable does not re-detect the dense token
  // range left by the filter, so the tactical fetch join cannot fire.
  ft.enable_encodings = reassert_dense;
  ft.post_process = reassert_dense;
  auto inner = FlowTable::Build(std::move(inner_flow), ft).MoveValue();

  TableScanOptions scan;
  scan.columns = {"v"};
  scan.token_columns = {"d"};
  HashJoinOptions jo;
  jo.outer_key = "d$token";
  jo.inner_key = "d$token";
  HashJoin join(std::make_unique<TableScan>(table, scan), inner, jo);
  std::vector<Block> out;
  if (!DrainOperator(&join, &out).ok()) std::exit(1);
  JoinRun r;
  r.seconds = timer.Seconds();
  r.rows = 0;
  for (const Block& b : out) r.rows += b.rows();
  r.strategy = join.strategy();
  return r;
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader(
      "Sect. 4.1.2 — tactical fetch-join upgrade on a filtered dictionary");
  auto table = tde::MakeDateTable(2000000);
  for (const bool reassert : {false, true}) {
    double secs = 0;
    tde::JoinRun r{};
    for (int i = 0; i < 3; ++i) {
      r = tde::RunJoin(table, reassert);
      secs += r.seconds;
    }
    std::printf(
        "FlowTable dense re-detection %-3s -> join strategy %-14s "
        "%9.3fs  (%llu rows)\n",
        reassert ? "on" : "off", tde::JoinStrategyName(r.strategy), secs / 3,
        static_cast<unsigned long long>(r.rows));
  }
  std::printf(
      "\npaper shape: the filtered sorted dictionary leaves a contiguous "
      "token range; FlowTable reasserts the dense property and the join "
      "upgrades from hashing to a fetch join.\n");
  return 0;
}
