// Fig. 10 reproduction: filter + aggregate over the artificial run-length
// tables of Sect. 5.3.
//
//   SELECT Index, MAX(Other) FROM table
//   WHERE Index > (100 - selectivity) GROUP BY Index
//
// Three plans (Sect. 6.6):
//   1. Scan -> Filter -> Aggregate                    (control)
//   2. Index -> Filter -> IndexedScan -> Aggregate    (rank join, hash agg)
//   3. Index -> Filter -> Sort -> IndexedScan -> OrdAggr
//
// Paper shape: plan 2/3 beat plan 1 by ~2x on the primary key; plan 3 wins
// by ~3x on the large table's secondary key (runs >> block size) and loses
// on the small table's secondary key (runs ~100 < block size).

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/exec/flow_table.h"
#include "src/observe/query_stats.h"
#include "src/plan/executor.h"
#include "src/plan/strategic.h"
#include "src/workload/rle_data.h"

namespace tde {
namespace {

using namespace tde::expr;  // NOLINT

/// Every rewrite off: the plan stays a plain decode-then-filter pipeline.
StrategicOptions DecodeThenFilterOptions() {
  StrategicOptions off;
  off.enable_rank_join = false;
  off.enable_invisible_join = false;
  off.enable_metadata_pruning = false;
  off.enable_run_filters = false;
  off.enable_dict_predicates = false;
  return off;
}

PlanNodePtr MakePlan(int plan, const std::shared_ptr<Table>& table,
                     const std::string& index_col,
                     const std::string& other_col, int selectivity) {
  const ExprPtr pred = Gt(Col(index_col), Int(100 - selectivity));
  if (plan == 1) {
    auto p = Plan::Scan(table, {index_col, other_col})
                 .Filter(pred)
                 .Aggregate({index_col}, {{AggKind::kMax, other_col, "m"}});
    return StrategicOptimize(p.root(), DecodeThenFilterOptions())
        .MoveValue();
  }
  auto iscan = std::make_shared<PlanNode>();
  iscan->kind = PlanNodeKind::kIndexedScan;
  iscan->table = table;
  iscan->index_column = index_col;
  iscan->index_predicate = pred;
  iscan->payload = {other_col};
  iscan->sort_index_by_value = plan == 3;
  auto agg = std::make_shared<PlanNode>();
  agg->kind = PlanNodeKind::kAggregate;
  agg->agg.group_by = {index_col};
  agg->agg.aggs = {{AggKind::kMax, other_col, "m"}};
  agg->force_hash_agg = plan == 2;
  agg->grouped_input = plan == 3;
  agg->children = {iscan};
  return agg;
}

double RunPlan(const PlanNodePtr& root, uint64_t* rows,
               std::string* operators = nullptr) {
  // Average of 3 runs (paper: 12 with extremes discarded).
  double total = 0;
  for (int i = 0; i < 3; ++i) {
    bench::Timer t;
    auto r = ExecutePlanNode(root);
    if (!r.ok()) {
      std::fprintf(stderr, "plan failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    *rows = r.value().num_rows();
    total += t.Seconds();
    if (operators != nullptr && r.value().stats() != nullptr) {
      *operators = r.value().stats()->ToJson();
    }
  }
  return total / 3;
}

/// Storage accesses (blocks) the IndexedScan will issue for the filtered
/// index, optionally value-sorted: contiguous entries coalesce, so sorting
/// a small-run index multiplies the access count (the Sect. 6.6 penalty).
uint64_t CountAccesses(const std::shared_ptr<Table>& table,
                       const std::string& index_col, int selectivity,
                       bool sorted) {
  auto col = table->ColumnByName(index_col).value();
  auto index = BuildIndexTable(*col).MoveValue();
  std::erase_if(index, [&](const IndexEntry& e) {
    return e.value <= 100 - selectivity;
  });
  if (sorted) SortIndexByValue(&index);
  uint64_t blocks = 0;
  uint64_t expected_start = UINT64_MAX;
  uint64_t in_block = 0;
  for (const IndexEntry& e : index) {
    uint64_t off = 0;
    while (off < e.count) {
      if (e.start + off != expected_start || in_block >= kBlockSize) {
        ++blocks;
        in_block = 0;
      }
      const uint64_t take = std::min<uint64_t>(e.count - off,
                                               kBlockSize - in_block);
      in_block += take;
      off += take;
      expected_start = e.start + off;
    }
  }
  return blocks;
}

void RunTable(const char* label, uint64_t rows, bench::JsonReport* report) {
  std::printf("\nbuilding %s (%llu rows)...\n", label,
              static_cast<unsigned long long>(rows));
  auto table = MakeRleTable(rows).MoveValue();
  for (const char* index_col : {"primary", "secondary"}) {
    const std::string other =
        std::string(index_col) == "primary" ? "secondary" : "primary";
    std::printf("\n-- %s, filtering %s --\n", label, index_col);
    std::printf("%11s %10s %10s %10s %7s %7s %10s %10s\n", "selectivity",
                "plan1_ms", "plan2_ms", "plan3_ms", "p1/p2", "p1/p3",
                "p2_blocks", "p3_blocks");
    for (int sel : {5, 10, 25, 50, 75, 90, 100}) {
      double ms[4] = {0, 0, 0, 0};
      uint64_t out_rows = 0;
      for (int plan = 1; plan <= 3; ++plan) {
        auto root = MakePlan(plan, table, index_col, other, sel);
        std::string operators = "null";
        ms[plan] = RunPlan(root, &out_rows, &operators) * 1000;
        if (report->enabled()) {
          char head[192];
          std::snprintf(head, sizeof(head),
                        "{\"table\":\"%s\",\"index\":\"%s\","
                        "\"selectivity\":%d,\"plan\":%d,\"ms\":%.4f,"
                        "\"rows\":%llu,\"operators\":",
                        label, index_col, sel, plan, ms[plan],
                        static_cast<unsigned long long>(out_rows));
          report->Add(std::string(head) + operators + "}");
        }
      }
      std::printf(
          "%10d%% %10.2f %10.2f %10.2f %7.2f %7.2f %10llu %10llu\n", sel,
          ms[1], ms[2], ms[3], ms[1] / ms[2], ms[1] / ms[3],
          static_cast<unsigned long long>(
              CountAccesses(table, index_col, sel, false)),
          static_cast<unsigned long long>(
              CountAccesses(table, index_col, sel, true)));
    }
  }
}

/// A low-cardinality string column plus an integer payload — the dictionary
/// compresses `s` to a handful of tokens over a sorted heap. The values
/// share a long prefix (typical of categorical paths and product codes), so
/// decode-then-filter pays a full collation walk per row while the
/// dictionary-code plan compares integers.
constexpr const char* kStringVocab[] = {
    "warehouse/produce/fruit/apple-granny-smith",
    "warehouse/produce/fruit/banana-cavendish",
    "warehouse/produce/fruit/cherry-rainier",
    "warehouse/produce/fruit/date-medjool",
    "warehouse/produce/fruit/elderberry-wild",
    "warehouse/produce/fruit/fig-mission",
    "warehouse/produce/fruit/grape-concord"};

std::shared_ptr<Table> MakeStringTable(uint64_t rows) {
  const auto& kVocab = kStringVocab;
  std::string csv = "s,v\n";
  csv.reserve(rows * 48);
  uint64_t x = 88172645463325252ull;  // xorshift: cheap, deterministic
  for (uint64_t i = 0; i < rows; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    csv += kVocab[x % 7];
    csv += ',';
    csv += std::to_string(x % 1000);
    csv += '\n';
  }
  Engine engine;
  return engine.ImportTextBuffer(csv, "strings").MoveValue();
}

/// Compressed-domain predicate evaluation vs decode-then-filter: the same
/// filter, with and without the dictionary-code / run-level rewrites.
void RunCompressedPredicates(uint64_t rows, bench::JsonReport* report) {
  std::printf("\n-- compressed-domain predicates (%llu rows) --\n",
              static_cast<unsigned long long>(rows));
  std::printf("%28s %12s %12s %8s\n", "predicate", "decode_ms",
              "compressed_ms", "speedup");

  struct Case {
    const char* name;
    std::shared_ptr<Table> table;
    ExprPtr pred;
    StrategicOptions on;
  };
  StrategicOptions dict_on;  // isolate the dict-code lowering
  dict_on.enable_invisible_join = false;
  std::vector<Case> cases;
  auto strings = MakeStringTable(rows);
  cases.push_back({"string eq (dict codes)", strings,
                   Eq(Col("s"), Str(kStringVocab[2])), dict_on});
  cases.push_back({"string range (dict codes)", strings,
                   Le(Col("s"), Str(kStringVocab[2])), dict_on});
  auto rle = MakeRleTable(rows).MoveValue();
  cases.push_back({"int range (run filter)", rle,
                   Gt(Col("primary"), Int(90)), StrategicOptions{}});
  for (const Case& c : cases) {
    auto make = [&] { return Plan::Scan(c.table).Filter(c.pred); };
    auto control =
        StrategicOptimize(make().root(), DecodeThenFilterOptions())
            .MoveValue();
    auto compressed = StrategicOptimize(make().root(), c.on).MoveValue();
    uint64_t control_rows = 0, compressed_rows = 0;
    const double decode_ms = RunPlan(control, &control_rows) * 1000;
    const double comp_ms = RunPlan(compressed, &compressed_rows) * 1000;
    if (control_rows != compressed_rows) {
      std::fprintf(stderr, "row mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(control_rows),
                   static_cast<unsigned long long>(compressed_rows));
      std::exit(1);
    }
    std::printf("%28s %12.2f %12.2f %7.2fx\n", c.name, decode_ms, comp_ms,
                decode_ms / comp_ms);
    if (report->enabled()) {
      char rec[256];
      std::snprintf(rec, sizeof(rec),
                    "{\"section\":\"compressed_predicates\","
                    "\"predicate\":\"%s\",\"rows\":%llu,"
                    "\"decode_ms\":%.4f,\"compressed_ms\":%.4f,"
                    "\"out_rows\":%llu}",
                    c.name, static_cast<unsigned long long>(rows), decode_ms,
                    comp_ms, static_cast<unsigned long long>(control_rows));
      report->Add(rec);
    }
  }
}

/// The same clustered data, stored monolithically vs segmented. The two
/// integer columns (a row-id ramp `x` and a payload `y`) are built with the
/// same encoder configuration; only the segmenting differs.
std::shared_ptr<Table> ClusteredTable(uint64_t rows, uint64_t segment_rows) {
  FlowTableOptions opt;
  opt.segment_rows = segment_rows;
  auto t = std::make_shared<Table>("clustered");
  ColumnBuildInput x, y;
  x.name = "x";
  x.type = TypeId::kInteger;
  y.name = "y";
  y.type = TypeId::kInteger;
  for (uint64_t i = 0; i < rows; ++i) {
    x.lanes.push_back(static_cast<Lane>(i));
    y.lanes.push_back(static_cast<Lane>(i % 997));
  }
  t->AddColumn(BuildColumn(std::move(x), opt).MoveValue());
  t->AddColumn(BuildColumn(std::move(y), opt).MoveValue());
  return t;
}

/// Zone-map segment pruning vs the same data stored monolithically: a
/// selective range filter over a clustered column. The segmented build
/// folds the predicate against each segment's zone map at lowering time
/// (EXPLAIN ANALYZE's `filter.segments_pruned`), so decode work — and, on
/// the lazy v3 path, I/O — stays proportional to the surviving segments.
/// The monolithic build has one zone map for the whole column and must
/// decode-then-filter everything.
void RunZoneMapPruning(uint64_t rows, bench::JsonReport* report) {
  constexpr uint64_t kSegmentRows = 64 * 1024;
  auto mono = ClusteredTable(rows, rows + 1);  // pinned monolithic
  auto seg = ClusteredTable(rows, kSegmentRows);
  const uint64_t num_segments = seg->column(0).SegmentShapes().size();
  std::printf(
      "\n-- zone-map segment pruning (%llu rows clustered, %llu segments of "
      "%llu) --\n",
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(num_segments),
      static_cast<unsigned long long>(kSegmentRows));
  std::printf("%11s %12s %14s %8s %8s %10s\n", "selectivity", "mono_ms",
              "segmented_ms", "speedup", "pruned", "surviving");

  for (const double sel : {0.01, 0.05, 0.25, 1.0}) {
    const Lane hi = static_cast<Lane>(static_cast<double>(rows) * sel) - 1;
    const ExprPtr pred = And(Ge(Col("x"), Int(0)), Le(Col("x"), Int(hi)));
    auto make = [&](const std::shared_ptr<Table>& t) {
      auto p = Plan::Scan(t).Filter(pred).Aggregate(
          {}, {{AggKind::kSum, "y", "s"}});
      return StrategicOptimize(p.root()).MoveValue();
    };
    uint64_t mono_rows = 0, seg_rows = 0;
    const double mono_ms = RunPlan(make(mono), &mono_rows) * 1000;
    const double seg_ms = RunPlan(make(seg), &seg_rows) * 1000;
    if (mono_rows != seg_rows) {
      std::fprintf(stderr, "row mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(mono_rows),
                   static_cast<unsigned long long>(seg_rows));
      std::exit(1);
    }
    const SegmentPruneResult prune = PruneScanSegments(*seg, pred);
    std::printf("%10.0f%% %12.2f %14.2f %7.2fx %8llu %10llu\n", sel * 100,
                mono_ms, seg_ms, mono_ms / seg_ms,
                static_cast<unsigned long long>(prune.segments_pruned),
                static_cast<unsigned long long>(num_segments -
                                                prune.segments_pruned));
    if (report->enabled()) {
      char rec[320];
      std::snprintf(rec, sizeof(rec),
                    "{\"section\":\"zone_map_pruning\",\"rows\":%llu,"
                    "\"selectivity\":%g,\"mono_ms\":%.4f,"
                    "\"segmented_ms\":%.4f,\"segments\":%llu,"
                    "\"segments_pruned\":%llu,\"rows_pruned\":%llu}",
                    static_cast<unsigned long long>(rows), sel, mono_ms,
                    seg_ms, static_cast<unsigned long long>(num_segments),
                    static_cast<unsigned long long>(prune.segments_pruned),
                    static_cast<unsigned long long>(prune.rows_pruned));
      report->Add(rec);
    }
  }
}

}  // namespace
}  // namespace tde

int main(int argc, char** argv) {
  tde::bench::JsonReport report("filtering", argc, argv);
  tde::bench::PrintHeader(
      "Fig. 10 — indexed-scan filtering on run-length data (Sect. 6.6)");
  std::printf("paper: 1M and 1B rows; here: 1M and TDE_LARGE_ROWS (see "
              "DESIGN.md)\n");
  tde::RunTable("small (1M)", 1000000, &report);
  tde::RunTable("large", tde::bench::LargeRleRows(), &report);
  tde::RunCompressedPredicates(1000000, &report);
  tde::RunZoneMapPruning(2000000, &report);
  return 0;
}
