// Fig. 8 + Fig. 9 reproduction: token width reduction for string and
// integer columns across the full table set.
//
// Paper shape: about three quarters of both string and integer columns get
// narrowed from the default 8 bytes, often down to one byte.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

struct WidthHistogram {
  std::map<int, int> counts;  // width -> column count
  int total = 0;

  void Add(uint8_t w) {
    ++counts[w];
    ++total;
  }
  void Print(const char* label) const {
    std::printf("\n%s (%d columns):\n", label, total);
    int narrowed = 0;
    for (const auto& [w, n] : counts) {
      std::printf("  %d bytes: %d column%s\n", w, n, n == 1 ? "" : "s");
      if (w < 8) narrowed += n;
    }
    std::printf("  narrowed below the default 8 bytes: %d/%d (%.0f%%)\n",
                narrowed, total, 100.0 * narrowed / total);
  }
};

void Collect(const std::string& data, char sep, WidthHistogram* strings,
             WidthHistogram* integers) {
  TextScanOptions text;
  text.field_separator = sep;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), {});
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  for (size_t i = 0; i < t.value()->num_columns(); ++i) {
    const Column& c = t.value()->column(i);
    if (c.type() == TypeId::kString) {
      strings->Add(c.TokenWidth());
    } else if (c.type() == TypeId::kInteger) {
      integers->Add(c.TokenWidth());
    }
  }
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader(
      "Fig. 8 / Fig. 9 — token & integer width reduction (Sect. 6.5)");
  const double sf = tde::bench::ScaleFactor();
  tde::WidthHistogram strings, integers;
  for (tde::TpchTable tt : tde::AllTpchTables()) {
    tde::Collect(tde::GenerateTpchTable(tt, sf), '|', &strings, &integers);
  }
  tde::Collect(tde::GenerateFlights(tde::bench::FlightsRows()), ',', &strings,
               &integers);
  strings.Print("Fig. 8 — string token widths");
  integers.Print("Fig. 9 — integer widths");
  std::printf(
      "\npaper shape: ~3/4 of both sets reduced, often to one byte, which "
      "upgrades hashing from collision to perfect/direct (Sect. 2.3.4).\n");
  return 0;
}
