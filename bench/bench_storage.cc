// Fig. 5 + Sect. 6.2 reproduction: compression savings.
//
// For lineitem and Flights: logical vs physical size under every
// {acceleration, encoding} combination, plus the per-encoding breakdown of
// the savings. For the full SF table set: total database size with and
// without encodings (the paper's 660 MB -> -140 MB observation).

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/exec/flow_table.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

std::shared_ptr<Table> Import(const std::string& data, char sep, bool acc,
                              bool enc) {
  TextScanOptions text;
  text.field_separator = sep;
  FlowTableOptions flow;
  flow.heap_acceleration = acc;
  flow.enable_encodings = enc;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), flow);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  return t.MoveValue();
}

void SizeMatrix(const char* label, const std::string& data, char sep) {
  std::printf("\n-- %s: flat file %.1f MB --\n", label,
              static_cast<double>(data.size()) / 1e6);
  std::printf("%-22s %12s %12s %9s\n", "configuration", "logical_MB",
              "physical_MB", "saved");
  for (const bool acc : {false, true}) {
    for (const bool enc : {false, true}) {
      auto t = Import(data, sep, acc, enc);
      const double logical = static_cast<double>(t->LogicalSize()) / 1e6;
      const double physical = static_cast<double>(t->PhysicalSize()) / 1e6;
      char name[64];
      std::snprintf(name, sizeof(name), "acc=%d enc=%d", acc, enc);
      std::printf("%-22s %12.2f %12.2f %8.0f%%\n", name, logical, physical,
                  100.0 * (1.0 - physical / logical));
      if (acc && enc) {
        std::printf("%-22s %11.0f%% (paper: 84%% for both tables)\n",
                    "saved vs flat file",
                    100.0 * (1.0 - physical * 1e6 /
                                       static_cast<double>(data.size())));
        // Per-encoding breakdown (Fig. 5's stacked savings).
        std::map<std::string, uint64_t> logical_by, physical_by;
        for (size_t i = 0; i < t->num_columns(); ++i) {
          const Column& c = t->column(i);
          const char* e = EncodingName(c.data()->type());
          logical_by[e] += c.LogicalSize();
          physical_by[e] += c.PhysicalSize();
        }
        for (const auto& [e, lbytes] : logical_by) {
          std::printf("    %-18s %12.2f %12.2f\n", e.c_str(),
                      static_cast<double>(lbytes) / 1e6,
                      static_cast<double>(physical_by[e]) / 1e6);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tde

int main() {
  tde::bench::PrintHeader("Fig. 5 / Sect. 6.2 — compression savings");
  const double sf = tde::bench::ScaleFactor();
  std::printf("TDE_SF=%g (paper: SF-30 lineitem, 25 GB Flights)\n", sf);

  tde::SizeMatrix("lineitem",
                  tde::GenerateTpchTable(tde::TpchTable::kLineitem, sf), '|');
  tde::SizeMatrix("Flights",
                  tde::GenerateFlights(tde::bench::FlightsRows()), ',');

  // Sect. 6.2: whole TPC-H database, encoded vs not.
  std::printf("\n-- full TPC-H database at SF %g --\n", sf);
  for (const bool enc : {false, true}) {
    uint64_t physical = 0, logical = 0;
    for (tde::TpchTable tt : tde::AllTpchTables()) {
      auto t = tde::Import(tde::GenerateTpchTable(tt, sf), '|', true, enc);
      physical += t->PhysicalSize();
      logical += t->LogicalSize();
    }
    std::printf("encodings=%d: logical %.2f MB, database file %.2f MB\n", enc,
                static_cast<double>(logical) / 1e6,
                static_cast<double>(physical) / 1e6);
  }
  std::printf("paper: SF-1 database 660 MB, encodings save ~140 MB (~21%%)\n");
  return 0;
}
