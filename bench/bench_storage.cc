// Fig. 5 + Sect. 6.2 reproduction: compression savings, plus the paged
// format's cold-open economics.
//
// For lineitem and Flights: logical vs physical size under every
// {acceleration, encoding} combination, plus the per-encoding breakdown of
// the savings. For the full SF table set: total database size with and
// without encodings (the paper's 660 MB -> -140 MB observation).
//
// The cold-open section compares the eager v1 file against the paged v2
// format: open latency, bytes resident after open, and bytes resident
// after a single-column query (lazy v2 faults in only that column).

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/core/engine.h"
#include "src/exec/flow_table.h"
#include "src/storage/pager/format.h"
#include "src/textscan/text_scan.h"
#include "src/workload/flights.h"
#include "src/workload/tpch.h"

namespace tde {
namespace {

std::shared_ptr<Table> Import(const std::string& data, char sep, bool acc,
                              bool enc) {
  TextScanOptions text;
  text.field_separator = sep;
  FlowTableOptions flow;
  flow.heap_acceleration = acc;
  flow.enable_encodings = enc;
  auto t = FlowTable::Build(TextScan::FromBuffer(data, text), flow);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    std::exit(1);
  }
  return t.MoveValue();
}

void SizeMatrix(const char* label, const std::string& data, char sep) {
  std::printf("\n-- %s: flat file %.1f MB --\n", label,
              static_cast<double>(data.size()) / 1e6);
  std::printf("%-22s %12s %12s %9s\n", "configuration", "logical_MB",
              "physical_MB", "saved");
  for (const bool acc : {false, true}) {
    for (const bool enc : {false, true}) {
      auto t = Import(data, sep, acc, enc);
      const double logical = static_cast<double>(t->LogicalSize()) / 1e6;
      const double physical = static_cast<double>(t->PhysicalSize()) / 1e6;
      char name[64];
      std::snprintf(name, sizeof(name), "acc=%d enc=%d", acc, enc);
      std::printf("%-22s %12.2f %12.2f %8.0f%%\n", name, logical, physical,
                  100.0 * (1.0 - physical / logical));
      if (acc && enc) {
        std::printf("%-22s %11.0f%% (paper: 84%% for both tables)\n",
                    "saved vs flat file",
                    100.0 * (1.0 - physical * 1e6 /
                                       static_cast<double>(data.size())));
        // Per-encoding breakdown (Fig. 5's stacked savings).
        std::map<std::string, uint64_t> logical_by, physical_by;
        for (size_t i = 0; i < t->num_columns(); ++i) {
          const Column& c = t->column(i);
          const char* e = EncodingName(c.data()->type());
          logical_by[e] += c.LogicalSize();
          physical_by[e] += c.PhysicalSize();
        }
        for (const auto& [e, lbytes] : logical_by) {
          std::printf("    %-18s %12.2f %12.2f\n", e.c_str(),
                      static_cast<double>(lbytes) / 1e6,
                      static_cast<double>(physical_by[e]) / 1e6);
        }
      }
    }
  }
}

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n < 0 ? 0 : static_cast<uint64_t>(n);
}

void ColdOpenBench(double sf, bench::JsonReport* report) {
  std::printf("\n-- cold open: eager v1 vs paged lazy v2 (lineitem) --\n");
  auto lineitem =
      Import(GenerateTpchTable(TpchTable::kLineitem, sf), '|', true, true);
  lineitem->set_name("lineitem");
  Database db;
  db.AddTable(lineitem);
  const std::string v1_path = "/tmp/tde_bench_lineitem_v1.tdedb";
  const std::string v2_path = "/tmp/tde_bench_lineitem_v2.tdedb";
  if (!WriteDatabase(db, v1_path).ok() ||
      !pager::WriteDatabaseV2(db, v2_path).ok()) {
    std::fprintf(stderr, "cannot write bench database files\n");
    return;
  }
  std::printf("rows %llu, file v1 %.2f MB, v2 %.2f MB (page padding)\n",
              static_cast<unsigned long long>(lineitem->rows()),
              static_cast<double>(FileSize(v1_path)) / 1e6,
              static_cast<double>(FileSize(v2_path)) / 1e6);

  struct Config {
    const char* name;
    const std::string* path;
    bool lazy;
  };
  const Config configs[] = {{"v1 eager", &v1_path, false},
                            {"v2 eager", &v2_path, false},
                            {"v2 lazy", &v2_path, true}};
  std::printf("%-10s %12s %14s %16s %12s\n", "open", "open_ms",
              "resident_MB", "post_query_MB", "query_ms");
  for (const Config& c : configs) {
    Engine::OpenOptions opts;
    opts.lazy = c.lazy;
    bench::Timer open_timer;
    auto e = Engine::OpenDatabase(*c.path, opts);
    const double open_ms = open_timer.Seconds() * 1e3;
    if (!e.ok()) {
      std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
      return;
    }
    auto bytes_resident = [&]() -> uint64_t {
      if (e.value().column_cache() != nullptr) {
        return e.value().column_cache()->bytes_resident();
      }
      return e.value().database()->PhysicalSize();
    };
    const uint64_t resident_after_open = bytes_resident();
    bench::Timer query_timer;
    auto r = e.value().ExecuteSql(
        "SELECT SUM(l_quantity) AS q FROM lineitem");
    const double query_ms = query_timer.Seconds() * 1e3;
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return;
    }
    const uint64_t resident_after_query = bytes_resident();
    std::printf("%-10s %12.2f %14.2f %16.2f %12.2f\n", c.name, open_ms,
                static_cast<double>(resident_after_open) / 1e6,
                static_cast<double>(resident_after_query) / 1e6, query_ms);
    char rec[512];
    std::snprintf(rec, sizeof(rec),
                  "{\"section\":\"cold_open\",\"config\":\"%s\","
                  "\"open_ms\":%.3f,\"query_ms\":%.3f,"
                  "\"bytes_resident_after_open\":%llu,"
                  "\"bytes_resident_after_query\":%llu,"
                  "\"file_bytes\":%llu,\"rows\":%llu}",
                  c.name, open_ms, query_ms,
                  static_cast<unsigned long long>(resident_after_open),
                  static_cast<unsigned long long>(resident_after_query),
                  static_cast<unsigned long long>(FileSize(*c.path)),
                  static_cast<unsigned long long>(lineitem->rows()));
    report->Add(rec);
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

/// Segment-granular faulting (format v3): the same clustered table stored
/// monolithically (v2) and segmented (v3), both opened lazily. A selective
/// range query over the segmented file faults in only the segments whose
/// zone maps survive the predicate; the monolithic file must materialize
/// the whole column blob for the same answer.
void SegmentedColdOpenBench(bench::JsonReport* report) {
  constexpr uint64_t kRows = 2000000;
  constexpr uint64_t kSegmentRows = 64 * 1024;
  std::printf(
      "\n-- segmented v3: selective query faults only surviving segments "
      "(%llu rows) --\n",
      static_cast<unsigned long long>(kRows));

  auto build = [&](uint64_t segment_rows) {
    FlowTableOptions opt;
    opt.segment_rows = segment_rows;
    auto t = std::make_shared<Table>("clustered");
    ColumnBuildInput x, y;
    x.name = "x";
    x.type = TypeId::kInteger;
    y.name = "y";
    y.type = TypeId::kInteger;
    for (uint64_t i = 0; i < kRows; ++i) {
      x.lanes.push_back(static_cast<Lane>(i));
      y.lanes.push_back(static_cast<Lane>(i % 997));
    }
    t->AddColumn(BuildColumn(std::move(x), opt).MoveValue());
    t->AddColumn(BuildColumn(std::move(y), opt).MoveValue());
    return t;
  };

  struct Config {
    const char* name;
    uint64_t segment_rows;
    std::string path;
  };
  Config configs[] = {
      {"v2 monolithic", kRows + 1, "/tmp/tde_bench_clustered_v2.tdedb"},
      {"v3 segmented", kSegmentRows, "/tmp/tde_bench_clustered_v3.tdedb"}};
  // One segment's worth of rows, in the middle of the clustered range.
  const uint64_t lo = kRows / 2;
  const uint64_t hi = lo + kSegmentRows - 1;
  char sql[160];
  std::snprintf(sql, sizeof(sql),
                "SELECT SUM(y) AS s FROM clustered WHERE x >= %llu AND "
                "x <= %llu",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));

  std::printf("%-14s %10s %9s %14s %16s %12s %18s\n", "open", "file_MB",
              "open_ms", "resident_MB", "post_query_MB", "query_ms",
              "resident_segments");
  for (Config& c : configs) {
    Database db;
    db.AddTable(build(c.segment_rows));
    if (!pager::WriteDatabaseV2(db, c.path).ok()) {
      std::fprintf(stderr, "cannot write %s\n", c.path.c_str());
      return;
    }
    bench::Timer open_timer;
    auto e = Engine::OpenDatabase(c.path);
    const double open_ms = open_timer.Seconds() * 1e3;
    if (!e.ok()) {
      std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
      return;
    }
    const uint64_t resident_open = e.value().column_cache()->bytes_resident();
    bench::Timer query_timer;
    auto r = e.value().ExecuteSql(sql);
    const double query_ms = query_timer.Seconds() * 1e3;
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return;
    }
    const uint64_t resident_query = e.value().column_cache()->bytes_resident();
    // Count faulted-in segments across both columns (monolithic columns
    // report one all-or-nothing shape each).
    const Engine& opened = e.value();
    auto t = opened.database().GetTable("clustered").value();
    uint64_t resident_segments = 0, total_segments = 0;
    for (size_t i = 0; i < t->num_columns(); ++i) {
      for (const SegmentShape& s : t->column(i).SegmentShapes()) {
        ++total_segments;
        if (s.resident) ++resident_segments;
      }
    }
    std::printf("%-14s %10.2f %9.2f %14.2f %16.2f %12.2f %10llu / %-5llu\n",
                c.name, static_cast<double>(FileSize(c.path)) / 1e6, open_ms,
                static_cast<double>(resident_open) / 1e6,
                static_cast<double>(resident_query) / 1e6, query_ms,
                static_cast<unsigned long long>(resident_segments),
                static_cast<unsigned long long>(total_segments));
    char rec[512];
    std::snprintf(rec, sizeof(rec),
                  "{\"section\":\"segmented_cold_open\",\"config\":\"%s\","
                  "\"open_ms\":%.3f,\"query_ms\":%.3f,"
                  "\"bytes_resident_after_open\":%llu,"
                  "\"bytes_resident_after_query\":%llu,"
                  "\"resident_segments\":%llu,\"total_segments\":%llu,"
                  "\"file_bytes\":%llu,\"rows\":%llu}",
                  c.name, open_ms, query_ms,
                  static_cast<unsigned long long>(resident_open),
                  static_cast<unsigned long long>(resident_query),
                  static_cast<unsigned long long>(resident_segments),
                  static_cast<unsigned long long>(total_segments),
                  static_cast<unsigned long long>(FileSize(c.path)),
                  static_cast<unsigned long long>(kRows));
    report->Add(rec);
    std::remove(c.path.c_str());
  }
}

}  // namespace
}  // namespace tde

int main(int argc, char** argv) {
  tde::bench::JsonReport report("storage", argc, argv);
  tde::bench::PrintHeader("Fig. 5 / Sect. 6.2 — compression savings");
  const double sf = tde::bench::ScaleFactor();
  std::printf("TDE_SF=%g (paper: SF-30 lineitem, 25 GB Flights)\n", sf);

  tde::SizeMatrix("lineitem",
                  tde::GenerateTpchTable(tde::TpchTable::kLineitem, sf), '|');
  tde::SizeMatrix("Flights",
                  tde::GenerateFlights(tde::bench::FlightsRows()), ',');

  // Sect. 6.2: whole TPC-H database, encoded vs not.
  std::printf("\n-- full TPC-H database at SF %g --\n", sf);
  for (const bool enc : {false, true}) {
    uint64_t physical = 0, logical = 0;
    for (tde::TpchTable tt : tde::AllTpchTables()) {
      auto t = tde::Import(tde::GenerateTpchTable(tt, sf), '|', true, enc);
      physical += t->PhysicalSize();
      logical += t->LogicalSize();
    }
    std::printf("encodings=%d: logical %.2f MB, database file %.2f MB\n", enc,
                static_cast<double>(logical) / 1e6,
                static_cast<double>(physical) / 1e6);
  }
  std::printf("paper: SF-1 database 660 MB, encodings save ~140 MB (~21%%)\n");

  tde::ColdOpenBench(sf, &report);
  tde::SegmentedColdOpenBench(&report);
  return 0;
}
