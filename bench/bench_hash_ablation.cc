// Sect. 2.3.4 / 6.5 ablation: the tactical hash-algorithm family. Width
// minimization matters because 1-2 byte keys admit a direct 64K table,
// 3-4 byte keys with a known range admit a perfect hash, and anything
// wider pays for collision detection.

#include <benchmark/benchmark.h>

#include "src/common/hash.h"
#include "src/exec/hash_aggregate.h"
#include "tests/test_util.h"

namespace tde {
namespace {

std::vector<Lane> MakeKeys(size_t n, int64_t domain) {
  std::vector<Lane> keys(n);
  uint64_t x = 88172645463325252ULL;
  for (auto& k : keys) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    k = static_cast<Lane>(x % static_cast<uint64_t>(domain));
  }
  return keys;
}

void BM_GroupMap(benchmark::State& state) {
  const auto algorithm = static_cast<HashAlgorithm>(state.range(0));
  const int64_t domain = state.range(1);
  const auto keys = MakeKeys(1 << 20, domain);
  for (auto _ : state) {
    GroupMap m(algorithm, 0, domain - 1);
    uint64_t sum = 0;
    for (Lane k : keys) sum += m.GetOrInsert(k);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
  state.SetLabel(HashAlgorithmName(algorithm));
}

BENCHMARK(BM_GroupMap)
    ->Args({static_cast<int>(HashAlgorithm::kDirect), 200})
    ->Args({static_cast<int>(HashAlgorithm::kPerfect), 200})
    ->Args({static_cast<int>(HashAlgorithm::kCollision), 200})
    ->Args({static_cast<int>(HashAlgorithm::kDirect), 50000})
    ->Args({static_cast<int>(HashAlgorithm::kPerfect), 50000})
    ->Args({static_cast<int>(HashAlgorithm::kCollision), 50000})
    ->Unit(benchmark::kMillisecond);

void BM_AggregationUnderAlgorithm(benchmark::State& state) {
  const auto algorithm = static_cast<HashAlgorithm>(state.range(0));
  const auto keys = MakeKeys(1 << 20, 1000);
  std::vector<Lane> vals(keys.size());
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<Lane>(i);
  for (auto _ : state) {
    AggregateOptions opts;
    opts.group_by = {"k"};
    opts.aggs = {{AggKind::kSum, "v", "s"}};
    opts.hash_algorithm = algorithm;
    opts.key_min = 0;
    opts.key_max = 999;
    HashAggregate agg(
        testutil::VectorSource::Ints({{"k", keys}, {"v", vals}}), opts);
    std::vector<Block> out;
    if (!DrainOperator(&agg, &out).ok()) state.SkipWithError("agg failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(HashAlgorithmName(algorithm));
}

BENCHMARK(BM_AggregationUnderAlgorithm)
    ->Arg(static_cast<int>(HashAlgorithm::kDirect))
    ->Arg(static_cast<int>(HashAlgorithm::kPerfect))
    ->Arg(static_cast<int>(HashAlgorithm::kCollision))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tde

BENCHMARK_MAIN();
